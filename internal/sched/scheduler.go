package sched

import (
	"fmt"
	"math/bits"

	"dtsvliw/internal/isa"
	"dtsvliw/internal/telemetry"
)

// element is one scheduling-list entry: one long instruction under
// construction. The candidate-instruction machinery of the hardware is
// simulated by the insertion-time journey in Insert; settled slots are
// "installed" in the paper's sense. Alongside the slot grid the element
// caches dependency signatures and occupancy aggregates of its installed
// slots (see sig.go), which stand in for the paper's per-slot comparator
// network: dependency queries test cached bitsets instead of scanning
// footprints.
type element struct {
	slots    []*Slot
	branches uint8 // conditional/indirect branches placed (tag counter)

	// Per-slot dependency signatures, parallel to slots. A slot's entry is
	// written when the slot is installed; entries of empty slots are stale
	// and never read.
	sigR []isa.Sig
	sigW []isa.Sig

	// Cached aggregates over installed slots (maintained by add/remove).
	occ     int        // occupied slots
	occMask uint64     // bit i set iff slots[i] != nil (Width ≤ 64, enforced by Validate)
	slotLat []uint8    // per-slot producer latency, parallel to slots
	ctis    int        // installed conditional/indirect branches
	mems    int        // slots touching memory (incl. memory copies)
	stores  int        // stores and memory copies (cohabitation rule)
	loads   int        // loads (cohabitation rule)
	rsig    isa.Sig    // OR of installed read signatures
	wsigLat []isa.Sig  // write signatures bucketed by producer latency (1..maxLat)
	latMask uint64     // bit l set iff wsigLat[l] is nonempty
	memW    []memWrite // LocMem write intervals, with producer latency
}

// renEntry is one binding of the direct-mapped rename table: the renaming
// register holding an architectural location's newest in-block value. A
// binding is live only if its epoch matches the scheduler's current block
// epoch, which makes clearing the table at block boundaries O(1).
type renEntry struct {
	reg   RenameReg
	epoch uint64
}

// Scheduler is the Scheduler Unit. Feed it Completed instructions with
// Insert; it returns finished Blocks when the scheduling list fills. Use
// Flush for externally triggered flushes (VLIW Cache hit, non-schedulable
// instruction).
type Scheduler struct {
	cfg    Config     //resetcheck:allow configuration is fixed at construction
	strat  Strategy   //resetcheck:allow placement policy (Config.Strategy; FCFS by default), fixed at construction
	maxLat int        //resetcheck:allow derived from cfg at construction
	nPhys  int        //resetcheck:allow physical integer registers (rename-table geometry), fixed at construction
	elems  []*element // index 0 is the scheduling-list head

	blockTag   uint32
	blockCWP   uint8
	blockSeq   uint64
	blockIns   uint64 // instructions inserted into the current block
	haveTag    bool
	renUsed    [NumRenameClasses]uint16
	order      uint16
	splits     int
	currentCon bool

	// Rename tracking (paper Figure 2): per architectural location, the
	// renaming register holding its newest value within the current block,
	// so that later consumers read the renaming register directly. Memory
	// locations are never forwarded (loads depend on the memory copy
	// instead). renTab is a direct-mapped epoch-stamped table covering
	// every register and singleton location; renameMap is the fallback for
	// locations outside the table's geometry (none in practice).
	renTab    []renEntry //resetcheck:allow epoch-stamped; Reset invalidates every binding via renEpoch++
	renEpoch  uint64
	renLive   int // live renTab bindings in the current block
	renameMap map[isa.Loc]RenameReg

	// acceptMask, per FU class, has bit i set iff slot i accepts the
	// class; free-slot lookup is then one AND-NOT against the element's
	// occupancy mask.
	acceptMask [isa.FUAny + 1]uint64 //resetcheck:allow pure function of cfg.FUs, computed at construction

	// conservative holds block tags (address plus entry window pointer)
	// that must be scheduled without load/store reordering after an
	// aliasing exception (paper §3.11).
	conservative map[uint64]bool

	// trace accumulates the current block's sequential instruction trace
	// under Config.RecordTrace; flush hands the slice to the block and
	// starts a fresh one.
	trace []Completed

	// Candidate signatures: the packed footprints of the instruction
	// currently journeying through Insert/moveUp (kept here, not in the
	// Slot, so block-resident slots stay small).
	candR isa.Sig
	candW isa.Sig

	// Allocation recycling (see pool.go). The slab lists additionally
	// record every chunk the arenas ever allocated so Reset can reclaim
	// the whole working set; slabs [0, locNext) / [0, pairNext) are the
	// ones mounted since the last Reset.
	elemPool  []*element
	slotChunk []Slot
	slotSlabs [][]Slot //resetcheck:allow allocation registry; Reset remounts it wholesale
	slotFree  []*Slot
	locArena  []isa.Loc
	locSlabs  [][]isa.Loc //resetcheck:allow allocation registry; Reset rewinds the mount cursor
	locNext   int
	pairArena []RenamePair
	pairSlabs [][]RenamePair //resetcheck:allow allocation registry; Reset rewinds the mount cursor
	pairNext  int
	blockPool []*Block //resetcheck:allow recycled-block pool, deliberately kept across runs

	// Reusable scratch buffers for the insertion hot path. Each buffer is
	// private to one phase of Insert/moveUp, so no two live uses alias;
	// every use truncates before writing, so stale contents are never
	// read and the buffers survive Reset on purpose (capacity reuse).
	scratchReads  []isa.Loc    //resetcheck:allow buildSlot: effects assembly
	scratchWrites []isa.Loc    //resetcheck:allow
	scratchLocs   []isa.Loc    //resetcheck:allow horizonOutputConflicts: horizon write set
	scratchOut    []isa.Loc    //resetcheck:allow horizonOutputConflicts result
	scratchAnti   []isa.Loc    //resetcheck:allow antiConflicts result
	scratchConf   []isa.Loc    //resetcheck:allow moveUp: deduplicated conflict set
	scratchRem    []isa.Loc    //resetcheck:allow split: surviving write set
	scratchCpR    []isa.Loc    //resetcheck:allow split: copy-instruction reads
	scratchCpW    []isa.Loc    //resetcheck:allow split: copy-instruction writes
	scratchPairsA []RenamePair //resetcheck:allow buildSlot SrcRenames / split Renames
	scratchPairsB []RenamePair //resetcheck:allow split Copies
	scratchSig    isa.Sig      //resetcheck:allow antiConflicts: exclusion signature, rebuilt per call

	tel *telemetry.Collector //resetcheck:allow nil when telemetry is disabled; pooled reuse refuses telemetry machines

	Stats Stats
}

// New builds a Scheduler Unit.
func New(cfg Config) (*Scheduler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	strat, err := newStrategy(cfg)
	if err != nil {
		return nil, err
	}
	u := &Scheduler{
		cfg:          cfg,
		strat:        strat,
		maxLat:       cfg.MaxLatency(),
		nPhys:        isa.NumPhysRegs(cfg.NWin),
		conservative: make(map[uint64]bool),
		renameMap:    make(map[isa.Loc]RenameReg),
		renEpoch:     1,
	}
	u.renTab = make([]renEntry, u.nPhys+64+renSingletons)
	for cl := range u.acceptMask {
		for i := 0; i < cfg.Width; i++ {
			if cfg.slotAccepts(i, isa.FUClass(cl)) {
				u.acceptMask[cl] |= 1 << i
			}
		}
	}
	// The stats carry the block geometry so derived metrics (slot
	// utilisation) never depend on callers re-supplying dimensions.
	u.Stats.Width = cfg.Width
	u.Stats.Height = cfg.Height
	return u, nil
}

// SetTelemetry attaches a telemetry collector (nil detaches). Hook sites
// are nil-guarded and outside the dependency-check hot paths, keeping
// the zero-alloc guarantee when detached.
func (u *Scheduler) SetTelemetry(t *telemetry.Collector) { u.tel = t }

// Config returns the scheduler's configuration.
func (u *Scheduler) Config() Config { return u.cfg }

// Empty reports whether the scheduling list has no active elements.
func (u *Scheduler) Empty() bool { return len(u.elems) == 0 }

// Len returns the number of active scheduling-list elements.
func (u *Scheduler) Len() int { return len(u.elems) }

// MarkConservative requests conservative (in-order memory) scheduling for
// the block starting at tag with entry window pointer cwp, after an
// aliasing exception invalidated it.
func (u *Scheduler) MarkConservative(tag uint32, cwp uint8) {
	u.conservative[conKey(tag, cwp)] = true
}

func conKey(tag uint32, cwp uint8) uint64 { return uint64(tag)<<8 | uint64(cwp) }

// renSingletons is the number of rename-table entries past the register
// files: ICC, FCC, Y, CWP and LocNone.
const renSingletons = 5

// renIdx maps an architectural location to its rename-table index, or -1
// for locations outside the table (memory, which is never forwarded, and
// renaming registers, which are never architectural effects).
func (u *Scheduler) renIdx(l isa.Loc) int {
	switch l.Kind {
	case isa.LocIReg:
		if int(l.Idx) < u.nPhys {
			return int(l.Idx)
		}
	case isa.LocFReg:
		if l.Idx < 64 {
			return u.nPhys + int(l.Idx)
		}
	case isa.LocICC:
		return u.nPhys + 64
	case isa.LocFCC:
		return u.nPhys + 65
	case isa.LocY:
		return u.nPhys + 66
	case isa.LocCWP:
		return u.nPhys + 67
	case isa.LocNone:
		return u.nPhys + 68
	}
	return -1
}

// renSet binds location l to renaming register reg for the current block.
func (u *Scheduler) renSet(l isa.Loc, reg RenameReg) {
	if i := u.renIdx(l); i >= 0 {
		if u.renTab[i].epoch != u.renEpoch {
			u.renLive++
		}
		u.renTab[i] = renEntry{reg: reg, epoch: u.renEpoch}
		return
	}
	u.renameMap[l] = reg
}

// renLookup returns the live binding of l, if any.
func (u *Scheduler) renLookup(l isa.Loc) (RenameReg, bool) {
	if i := u.renIdx(l); i >= 0 {
		if u.renTab[i].epoch == u.renEpoch {
			return u.renTab[i].reg, true
		}
		return RenameReg{}, false
	}
	reg, ok := u.renameMap[l]
	return reg, ok
}

// renDelete retires the binding of l (its architectural location was
// overwritten by a newer instruction).
func (u *Scheduler) renDelete(l isa.Loc) {
	if i := u.renIdx(l); i >= 0 {
		if u.renTab[i].epoch == u.renEpoch {
			u.renTab[i].epoch = 0
			u.renLive--
		}
		return
	}
	if len(u.renameMap) > 0 {
		delete(u.renameMap, l)
	}
}

// renAny reports whether any binding is live in the current block.
func (u *Scheduler) renAny() bool {
	return u.renLive > 0 || len(u.renameMap) > 0
}

// newElement appends a scheduling-list element, recycling a pooled one
// when available.
func (u *Scheduler) newElement() *element {
	var e *element
	if n := len(u.elemPool); n > 0 {
		e = u.elemPool[n-1]
		u.elemPool = u.elemPool[:n-1]
	} else {
		e = &element{
			slots:   make([]*Slot, u.cfg.Width),
			sigR:    make([]isa.Sig, u.cfg.Width),
			sigW:    make([]isa.Sig, u.cfg.Width),
			slotLat: make([]uint8, u.cfg.Width),
			wsigLat: make([]isa.Sig, u.maxLat+1),
		}
	}
	u.elems = append(u.elems, e)
	return e
}

// freeSlot returns the index of a free slot in e compatible with class cl,
// or -1.
func (u *Scheduler) freeSlot(e *element, cl isa.FUClass) int {
	m := u.acceptMask[cl] &^ e.occMask
	if m == 0 {
		return -1
	}
	return bits.TrailingZeros64(m)
}

// overlapAny reports whether any location in a overlaps any in b: the
// naive pairwise predicate the dependency signatures accelerate. It
// remains the semantic reference (TestMaskOverlapMatchesNaive) and the
// fallback for signatures that overflowed the exact encoding.
func overlapAny(a, b []isa.Loc) bool {
	for _, x := range a {
		for _, y := range b {
			if x.Overlaps(y) {
				return true
			}
		}
	}
	return false
}

// trueDepBlocked reports whether the candidate may not occupy element
// target: a producer in element j whose result arrives after target
// (j + latency > target) writes one of the candidate's read locations.
// With all latencies 1 this reduces to the paper's check against the
// single element above (multicycle extension, companion study [14]).
//
// Fast path: the candidate's read signature (candR) is tested against
// each horizon element's latency-bucketed write signatures; memory reads
// are compared against the element's LocMem side table. The naive
// per-slot scan runs only if a signature overflowed the exact encoding.
// The candidate must not be installed in any scanned element (all call
// sites check elements strictly above the candidate's position).
func (u *Scheduler) trueDepBlocked(cand *Slot, target int) bool {
	lo := target - u.maxLat + 1
	if lo < 0 {
		lo = 0
	}
	fallback := u.candR.Flags&isa.SigOver != 0
	candMem := u.candR.Flags&isa.SigMem != 0
	for j := lo; j <= target && j < len(u.elems); j++ {
		e := u.elems[j]
		if e.occ == 0 {
			continue
		}
		minLat := target - j + 1
		lm := e.latMask &^ (1<<uint(minLat) - 1)
		for lm != 0 {
			l := bits.TrailingZeros64(lm)
			lm &= lm - 1
			es := &e.wsigLat[l]
			if u.candR.Hit(es) {
				return true
			}
			if es.Flags&isa.SigOver != 0 {
				fallback = true
			}
		}
		if candMem {
			for _, mw := range e.memW {
				if int(mw.lat) >= minLat && memAnyOverlap(cand.reads, mw.loc) {
					return true
				}
			}
		}
	}
	if fallback {
		return u.trueDepBlockedSlow(cand, target)
	}
	return false
}

// trueDepBlockedSlow is the naive per-slot scan (the semantic reference).
func (u *Scheduler) trueDepBlockedSlow(cand *Slot, target int) bool {
	lo := target - u.maxLat + 1
	if lo < 0 {
		lo = 0
	}
	for j := lo; j <= target && j < len(u.elems); j++ {
		for _, w := range u.elems[j].slots {
			if w == nil || w == cand || j+w.LatOr1() <= target {
				continue
			}
			if overlapAny(cand.reads, w.writes) {
				return true
			}
		}
	}
	return false
}

// wawBlocked reports whether element target cannot hold cand because of a
// write-ordering hazard: an installed slot writing one of cand's write
// locations either shares the target element (two writes to one location
// cannot share a long instruction) or is an in-flight multicycle producer
// whose writeback lands strictly after cand's own (the delayed commit
// would clobber the younger value). With all latencies 1 this reduces to
// the paper's output-dependency rule against the tail element.
func (u *Scheduler) wawBlocked(cand *Slot, target int) bool {
	cl := cand.LatOr1()
	lo := target - u.maxLat + 1
	if lo < 0 {
		lo = 0
	}
	fallback := u.candW.Flags&isa.SigOver != 0
	candMem := u.candW.Flags&isa.SigMem != 0
	for j := lo; j <= target && j < len(u.elems); j++ {
		e := u.elems[j]
		if e.occ == 0 {
			continue
		}
		if j == target {
			// Sharing the target element: every installed write conflicts,
			// whatever its latency bucket.
			lm := e.latMask
			for lm != 0 {
				l := bits.TrailingZeros64(lm)
				lm &= lm - 1
				es := &e.wsigLat[l]
				if u.candW.Hit(es) {
					return true
				}
				if es.Flags&isa.SigOver != 0 {
					fallback = true
				}
			}
			if candMem {
				for _, mw := range e.memW {
					if memAnyOverlap(cand.writes, mw.loc) {
						return true
					}
				}
			}
			continue
		}
		// In-flight producer whose writeback lands strictly after cand's:
		// j + lat > target + cl.
		minLat := target + cl - j + 1
		if minLat > u.maxLat {
			continue
		}
		lm := e.latMask &^ (1<<uint(minLat) - 1)
		for lm != 0 {
			l := bits.TrailingZeros64(lm)
			lm &= lm - 1
			es := &e.wsigLat[l]
			if u.candW.Hit(es) {
				return true
			}
			if es.Flags&isa.SigOver != 0 {
				fallback = true
			}
		}
		if candMem {
			for _, mw := range e.memW {
				if int(mw.lat) >= minLat && memAnyOverlap(cand.writes, mw.loc) {
					return true
				}
			}
		}
	}
	if fallback {
		return u.wawBlockedSlow(cand, target)
	}
	return false
}

func (u *Scheduler) wawBlockedSlow(cand *Slot, target int) bool {
	cl := cand.LatOr1()
	lo := target - u.maxLat + 1
	if lo < 0 {
		lo = 0
	}
	for j := lo; j <= target && j < len(u.elems); j++ {
		for _, w := range u.elems[j].slots {
			if w == nil || w == cand {
				continue
			}
			if j != target && j+w.LatOr1() <= target+cl {
				continue // producer's writeback lands at or before cand's
			}
			if overlapAny(cand.writes, w.writes) {
				return true
			}
		}
	}
	return false
}

// wawCopyUnsafe reports whether moving cand out of element elemIdx is
// unsafe even with a split: an in-flight producer of one of cand's write
// locations commits strictly after the copy instruction (which stays
// behind in elemIdx) would, so renaming cannot restore write order and
// the candidate must be installed instead. Only latencies of three or
// more cycles can reach past the copy.
func (u *Scheduler) wawCopyUnsafe(cand *Slot, elemIdx int) bool {
	if u.maxLat < 3 {
		return false // no latency can reach past the copy instruction
	}
	lo := elemIdx - u.maxLat + 1
	if lo < 0 {
		lo = 0
	}
	fallback := u.candW.Flags&isa.SigOver != 0
	candMem := u.candW.Flags&isa.SigMem != 0
	for j := lo; j < elemIdx && j < len(u.elems); j++ {
		e := u.elems[j]
		if e.occ == 0 {
			continue
		}
		// Keep producers with j + lat - 1 > elemIdx.
		minLat := elemIdx - j + 2
		if minLat > u.maxLat {
			continue
		}
		lm := e.latMask &^ (1<<uint(minLat) - 1)
		for lm != 0 {
			l := bits.TrailingZeros64(lm)
			lm &= lm - 1
			es := &e.wsigLat[l]
			if u.candW.Hit(es) {
				return true
			}
			if es.Flags&isa.SigOver != 0 {
				fallback = true
			}
		}
		if candMem {
			for _, mw := range e.memW {
				if int(mw.lat) >= minLat && memAnyOverlap(cand.writes, mw.loc) {
					return true
				}
			}
		}
	}
	if fallback {
		return u.wawCopyUnsafeSlow(cand, elemIdx)
	}
	return false
}

func (u *Scheduler) wawCopyUnsafeSlow(cand *Slot, elemIdx int) bool {
	lo := elemIdx - u.maxLat + 1
	if lo < 0 {
		lo = 0
	}
	for j := lo; j < elemIdx && j < len(u.elems); j++ {
		for _, w := range u.elems[j].slots {
			if w == nil || w == cand || j+w.LatOr1()-1 <= elemIdx {
				continue
			}
			if overlapAny(cand.writes, w.writes) {
				return true
			}
		}
	}
	return false
}

// horizonOutputConflicts returns the candidate's write locations that
// collide with an in-flight producer whose completion would land at or
// after the candidate's (write-ordering hazard); such outputs must be
// renamed by a split. The returned slice aliases a scratch buffer valid
// until the next call.
//
// Fast path: signatures prove the common no-conflict case without
// touching any slot; only when a conflict is possible does the exact
// collection scan run (it allocates nothing either).
func (u *Scheduler) horizonOutputConflicts(cand *Slot, target int) []isa.Loc {
	lo := target - u.maxLat + 1
	if lo < 0 {
		lo = 0
	}
	possible := u.candW.Flags&isa.SigOver != 0
	candMem := u.candW.Flags&isa.SigMem != 0
	for j := lo; j <= target && j < len(u.elems) && !possible; j++ {
		e := u.elems[j]
		if e.occ == 0 {
			continue
		}
		minLat := target - j + 1
		lm := e.latMask &^ (1<<uint(minLat) - 1)
		for lm != 0 {
			l := bits.TrailingZeros64(lm)
			lm &= lm - 1
			es := &e.wsigLat[l]
			if u.candW.Hit(es) || es.Flags&isa.SigOver != 0 {
				possible = true
				break
			}
		}
		if !possible && candMem {
			for _, mw := range e.memW {
				if int(mw.lat) >= minLat && memAnyOverlap(cand.writes, mw.loc) {
					possible = true
					break
				}
			}
		}
	}
	if !possible {
		return nil
	}
	// Exact collection, identical to the original implementation but into
	// reusable scratch buffers.
	locs := u.scratchLocs[:0]
	for j := lo; j <= target && j < len(u.elems); j++ {
		for _, w := range u.elems[j].slots {
			if w == nil || w == cand || j+w.LatOr1() <= target {
				continue
			}
			locs = append(locs, w.writes...)
		}
	}
	u.scratchLocs = locs
	out := u.scratchOut[:0]
	for _, w := range cand.writes {
		for _, l := range locs {
			if w.Overlaps(l) {
				out = append(out, w)
				break
			}
		}
	}
	u.scratchOut = out
	return out
}

// antiConflicts returns the candidate's write locations that overlap the
// read footprints of the other installed slots of cur (the hardware
// disables the comparators of the companion slot, paper §3.7). The
// returned slice aliases a scratch buffer valid until the next call.
func (u *Scheduler) antiConflicts(cand *Slot, cur *element, slotIdx int) []isa.Loc {
	// Quick reject against the element's full read signature (a superset
	// of the exclusion set: it includes the candidate's own reads).
	if !u.candW.Hit(&cur.rsig) && !u.candW.MemBoth(&cur.rsig) && !u.candW.Over(&cur.rsig) {
		return nil
	}
	// The full signature intersected; rebuild the read signature without
	// the candidate's own slot and retest.
	ex := &u.scratchSig
	ex.Reset()
	for i, s := range cur.slots {
		if s == nil || i == slotIdx {
			continue
		}
		ex.Or(&cur.sigR[i])
	}
	if !u.candW.Hit(ex) && !u.candW.MemBoth(ex) && !u.candW.Over(ex) {
		return nil
	}
	// Exact collection, ordered by the candidate's write set like the
	// original conflictingWrites(cand, elemReads(cur, slotIdx)).
	out := u.scratchAnti[:0]
	for _, w := range cand.writes {
		conflict := false
		for i, s := range cur.slots {
			if s == nil || i == slotIdx {
				continue
			}
			for _, r := range s.reads {
				if w.Overlaps(r) {
					conflict = true
					break
				}
			}
			if conflict {
				break
			}
		}
		if conflict {
			out = append(out, w)
		}
	}
	u.scratchAnti = out
	return out
}

// memSerialized reports whether conservative scheduling forces an order
// dependency between the candidate and element e: after an aliasing
// exception the block keeps its loads and stores in insertion order by
// treating every memory pair as dependent (paper §3.11). The candidate is
// never installed in e at any call site, so the cached aggregate needs no
// exclusion.
func (u *Scheduler) memSerialized(cand *Slot, e *element) bool {
	return u.currentCon && !cand.IsCopy && cand.IsMem && e.mems > 0
}

func hasMemCopy(s *Slot) bool {
	for _, c := range s.Copies {
		if c.Loc.Kind == isa.LocMem {
			return true
		}
	}
	return false
}

// buildSlot constructs the Slot for a completed instruction, rewriting
// source operands whose newest in-block value lives in a renaming
// register, and retiring rename bindings superseded by this instruction's
// architectural writes. Footprints are assembled in scratch buffers and
// stored in the Loc arena; the Slot itself comes from the slot pool. The
// candidate signatures candR/candW are left describing the new slot.
func (u *Scheduler) buildSlot(c Completed) *Slot {
	s := u.newSlot()
	s.Inst = c.Inst
	s.Addr = c.Addr
	s.CWP = c.CWP
	s.Seq = c.Seq
	s.Lat = int32(u.cfg.latencyOf(&c.Inst))
	reads, writes := c.Inst.EffectsAppend(c.CWP, u.cfg.NWin, c.Outcome.EA,
		u.scratchReads[:0], u.scratchWrites[:0])
	u.scratchReads, u.scratchWrites = reads, writes
	if u.renAny() && !u.cfg.NoForwarding {
		srcRen := u.scratchPairsA[:0]
		for i, r := range reads {
			if r.Kind == isa.LocMem {
				continue
			}
			if reg, ok := u.renLookup(r); ok {
				reads[i] = RenLoc(reg)
				srcRen = append(srcRen, RenamePair{Loc: r, Reg: reg})
			}
		}
		u.scratchPairsA = srcRen
		s.SrcRenames = u.grabPairs(srcRen)
		for _, w := range writes {
			if w.Kind != isa.LocMem {
				u.renDelete(w)
			}
		}
	}
	s.reads = u.grabLocs(reads)
	s.writes = u.grabLocs(writes)
	u.candR.Reset()
	u.candR.AddSet(s.reads)
	u.candW.Reset()
	u.candW.AddSet(s.writes)
	if c.Inst.IsMem() {
		s.IsMem = true
		s.IsStore = c.Inst.IsStore()
		s.MemAddr = c.Outcome.EA
		s.MemSize = c.Inst.MemSize()
	}
	if c.Inst.IsCondBranch() || c.Inst.IsIndirectBranch() {
		s.BrTaken = c.Outcome.Taken
		s.BrTarget = c.Outcome.Target
	}
	return s
}

// cohabitCross updates the candidate's sticky cross bit on entering
// element e (paper §3.10; see DESIGN.md §5 for the store/load extension).
// The element aggregates include the candidate itself, matching the
// original slot scan which ran after placement.
func cohabitCross(cand *Slot, e *element) {
	if !cand.IsMem || cand.Cross {
		return
	}
	if e.stores > 0 {
		cand.Cross = true
		return
	}
	if cand.IsStore && e.loads > 0 {
		cand.Cross = true
	}
}

// place puts cand into a free slot of e with the element's current tag.
func (u *Scheduler) place(cand *Slot, e *element) int {
	idx := u.freeSlot(e, cand.Inst.Class())
	e.slots[idx] = cand
	e.sigR[idx] = u.candR
	e.sigW[idx] = u.candW
	e.add(cand, idx)
	cand.Tag = e.branches
	if cand.IsCondOrIndirectBranch() {
		e.branches++
	}
	cohabitCross(cand, e)
	return idx
}

// allocRename allocates a fresh renaming register for an architectural
// location.
func (u *Scheduler) allocRename(l isa.Loc) RenameReg {
	cl := classOf(l)
	r := RenameReg{Class: cl, Idx: u.renUsed[cl]}
	u.renUsed[cl]++
	if u.renUsed[cl] > u.Stats.MaxRenames[cl] {
		u.Stats.MaxRenames[cl] = u.renUsed[cl]
	}
	return r
}

// split renames the given outputs of cand and installs a copy instruction
// in cand's current slot of element e (paper §3.2). The copy keeps the
// element's current tag position and, for memory, the candidate's order
// and address for aliasing checks. The caller must recalc e afterwards.
func (u *Scheduler) split(cand *Slot, e *element, slotIdx int, conflicted []isa.Loc) {
	copySlot := u.newSlot()
	copySlot.Inst = cand.Inst
	copySlot.Addr = cand.Addr
	copySlot.CWP = cand.CWP
	copySlot.Seq = cand.Seq
	copySlot.Tag = cand.Tag
	copySlot.IsCopy = true
	remaining := u.scratchRem[:0]
	cpReads := u.scratchCpR[:0]
	cpWrites := u.scratchCpW[:0]
	renames := append(u.scratchPairsA[:0], cand.Renames...)
	copies := u.scratchPairsB[:0]
	faultedRename := false
	for _, w := range cand.writes {
		conflict := w.Kind != isa.LocRen
		if conflict {
			conflict = false
			for _, cw := range conflicted {
				if w == cw {
					conflict = true
					break
				}
			}
		}
		if !conflict {
			remaining = append(remaining, w)
			continue
		}
		reg := u.allocRename(w)
		if u.cfg.FaultDropRename && !faultedRename && w.Kind != isa.LocMem {
			// Fault injection (blockcheck meta-test): the split allocates
			// the renaming register and leaves the copy behind, but forgets
			// to redirect the producer's write — the copy commits a
			// renaming register nothing writes.
			faultedRename = true
			copies = append(copies, RenamePair{Loc: w, Reg: reg})
			cpReads = append(cpReads, RenLoc(reg))
			cpWrites = append(cpWrites, w)
			remaining = append(remaining, w)
			continue
		}
		renames = append(renames, RenamePair{Loc: w, Reg: reg})
		copies = append(copies, RenamePair{Loc: w, Reg: reg})
		cpReads = append(cpReads, RenLoc(reg))
		if w.Kind != isa.LocMem && !u.cfg.NoForwarding {
			u.renSet(w, reg)
			remaining = append(remaining, RenLoc(reg))
		}
		if w.Kind == isa.LocMem {
			cand.MemRenamed = true
			copySlot.IsMem = true
			copySlot.IsStore = true
			copySlot.MemAddr = cand.MemAddr
			copySlot.MemSize = cand.MemSize
			copySlot.Order = cand.Order
			copySlot.Cross = cand.Cross
		}
		cpWrites = append(cpWrites, w)
	}
	u.scratchRem, u.scratchCpR, u.scratchCpW = remaining, cpReads, cpWrites
	u.scratchPairsA, u.scratchPairsB = renames, copies
	cand.Renames = u.grabPairs(renames)
	copySlot.Copies = u.grabPairs(copies)
	cand.writes = u.grabLocs(remaining)
	u.candW.Reset()
	u.candW.AddSet(cand.writes)
	copySlot.reads = u.grabLocs(cpReads)
	copySlot.writes = u.grabLocs(cpWrites)
	if u.cfg.FaultDropCopy {
		// Fault injection (oracle meta-test): lose the copy instruction,
		// leaving the renamed values stranded in the renaming registers.
		e.slots[slotIdx] = nil
		u.releaseSlot(copySlot)
	} else {
		e.slots[slotIdx] = copySlot
		e.sigR[slotIdx].Reset()
		e.sigR[slotIdx].AddSet(copySlot.reads)
		e.sigW[slotIdx].Reset()
		e.sigW[slotIdx].AddSet(copySlot.writes)
	}
	u.splits++
	u.Stats.Splits++
	if u.tel != nil {
		u.tel.Split(cand.Addr)
	}
}

// Insert feeds one completed instruction to the Scheduler Unit. If the
// scheduling list is full, the current block is flushed and returned (its
// NBA address field is the incoming instruction's address, which starts
// the fall-through block, paper §3.3); the instruction then begins a new
// block. Nops and unconditional direct branches are ignored (paper §3.9).
// Non-schedulable instructions must be handled by the caller via Flush
// before calling Insert.
func (u *Scheduler) Insert(c Completed) (*Block, error) {
	if c.Inst.IsNop() || c.Inst.IsUncondBranch() {
		if u.cfg.RecordTrace && len(u.elems) > 0 {
			// Ignored instructions inside an open block belong to its trace
			// span; before the first placed instruction they belong to no
			// block.
			u.trace = append(u.trace, c)
		}
		u.Stats.Ignored++
		return nil, nil
	}
	if !c.Inst.IsSchedulable() {
		return nil, fmt.Errorf("sched: non-schedulable %v at %#08x reached Insert", c.Inst.Op, c.Addr)
	}

	var flushed *Block
	var cand *Slot

	if len(u.elems) > 0 && u.strat.WantFlushBefore(u, &c) {
		// Strategy-requested early flush (degenerate strategies like
		// one-per-block): the candidate starts a fresh block below.
		flushed = u.flush(c.Addr, c.Seq)
	}

	if len(u.elems) == 0 {
		// Rename bindings never cross blocks: start the block first so the
		// slot is built against the fresh (empty) rename table.
		u.startBlock(c)
		cand = u.buildSlot(c)
	} else {
		cand = u.buildSlot(c)
		tail := u.elems[len(u.elems)-1]
		// The strategy is consulted only when the legality machinery has
		// proven the tail can hold the candidate (short-circuit): it may
		// open a new element anyway, but never prevent a forced one.
		if u.needsNewElement(cand, tail) || u.strat.WantNewElement(u) {
			if len(u.elems) >= u.cfg.Height {
				flushed = u.flush(c.Addr, c.Seq)
				u.startBlock(c)
				u.releaseSlot(cand)
				cand = u.buildSlot(c)
			} else {
				u.newElement()
				// Multicycle producers may require further padding
				// elements before the candidate's reads are satisfied and
				// in-flight writebacks of its output locations have landed.
				for u.trueDepBlocked(cand, len(u.elems)-1) ||
					u.wawBlocked(cand, len(u.elems)-1) {
					if len(u.elems) >= u.cfg.Height {
						flushed = u.flush(c.Addr, c.Seq)
						u.startBlock(c)
						u.releaseSlot(cand)
						cand = u.buildSlot(c)
						break
					}
					u.newElement()
				}
			}
		}
	}

	if cand.IsMem {
		cand.Order = u.order
		u.order++
	}

	tailIdx := len(u.elems) - 1
	slotIdx := u.place(cand, u.elems[tailIdx])
	u.Stats.Inserted++
	u.blockIns++
	if u.cfg.RecordTrace {
		// Record after the flush/startBlock decisions above, so the
		// instruction lands in the trace of the block it was placed in.
		u.trace = append(u.trace, c)
	}

	u.moveUp(cand, tailIdx, slotIdx)
	return flushed, nil
}

// needsNewElement applies the insertion rule: a new tail element is needed
// on a true dependency, an output dependency (two writes to one location
// cannot share a long instruction), a resource shortage, or conservative
// memory serialisation. Anti and control dependencies do not block
// placement in the tail: the read-before-write long-instruction semantics
// and the branch-tag system make such placement safe (paper §3.8). The
// latency horizon covers in-flight multicycle producers.
func (u *Scheduler) needsNewElement(cand *Slot, tail *element) bool {
	if u.freeSlot(tail, cand.Inst.Class()) < 0 {
		return true
	}
	t := len(u.elems) - 1
	if u.trueDepBlocked(cand, t) {
		return true
	}
	if u.wawBlocked(cand, t) {
		return true
	}
	return u.memSerialized(cand, tail)
}

// moveUp walks the candidate up the scheduling list until installed,
// applying the paper's install/split/move rules at each element boundary.
func (u *Scheduler) moveUp(cand *Slot, elemIdx, slotIdx int) {
	if cand.Inst.IsCTI() {
		u.Stats.Installs++
		return // control-transfer instructions never move (paper §3.8)
	}
	for elemIdx > 0 {
		cur := u.elems[elemIdx]
		prev := u.elems[elemIdx-1]

		// Install on true dependency or resource dependency (paper §3.7:
		// "if the install and the split signals are both true the
		// respective candidate instruction is only installed"). The
		// dependency horizon covers multicycle producers.
		if u.trueDepBlocked(cand, elemIdx-1) ||
			u.freeSlot(prev, cand.Inst.Class()) < 0 ||
			u.memSerialized(cand, prev) ||
			u.wawCopyUnsafe(cand, elemIdx) {
			break
		}

		// The move is legal; the strategy decides whether to take it (the
		// FCFS hardware always does).
		if !u.strat.WantMoveUp(u, elemIdx) {
			break
		}

		// Split on output dependency with i-1 (or any in-flight producer
		// completing at/after the candidate), anti dependency with i, or
		// control dependency with i (paper §3.2).
		outConf := u.horizonOutputConflicts(cand, elemIdx-1)
		antiConf := u.antiConflicts(cand, cur, slotIdx)
		needAll := cur.ctis > 0
		if len(outConf) > 0 || len(antiConf) > 0 || needAll {
			conflicted := u.scratchConf[:0]
			if needAll {
				for _, w := range cand.writes {
					if w.Kind != isa.LocRen {
						conflicted = append(conflicted, w)
					}
				}
			} else {
				for _, l := range outConf {
					if !locIn(conflicted, l) {
						conflicted = append(conflicted, l)
					}
				}
				for _, l := range antiConf {
					if !locIn(conflicted, l) {
						conflicted = append(conflicted, l)
					}
				}
			}
			u.scratchConf = conflicted
			// Remove the candidate from cur's aggregates before split can
			// flip its flags (MemRenamed): remove must see the flags the
			// candidate was added with.
			cur.remove(cand, slotIdx)
			if len(conflicted) > 0 {
				u.split(cand, cur, slotIdx, conflicted)
				if cs := cur.slots[slotIdx]; cs != nil {
					cur.add(cs, slotIdx)
				}
			} else {
				// Nothing left to protect (all outputs already renamed):
				// the move is safe without a new copy.
				cur.slots[slotIdx] = nil
			}
		} else {
			cur.remove(cand, slotIdx)
			cur.slots[slotIdx] = nil
		}

		// Move into the previous element.
		slotIdx = u.freeSlot(prev, cand.Inst.Class())
		prev.slots[slotIdx] = cand
		prev.sigR[slotIdx] = u.candR
		prev.sigW[slotIdx] = u.candW
		prev.add(cand, slotIdx)
		cand.Tag = prev.branches
		cohabitCross(cand, prev)
		elemIdx--
		u.Stats.MoveUps++
	}
	u.Stats.Installs++
}

// locIn reports whether l is already present in locs (small-set dedup
// replacing the previous per-decision map allocation).
func locIn(locs []isa.Loc, l isa.Loc) bool {
	for _, x := range locs {
		if x == l {
			return true
		}
	}
	return false
}

// startBlock begins a new block with c as its first instruction.
func (u *Scheduler) startBlock(c Completed) {
	u.newElement()
	u.blockTag = c.Addr
	u.blockCWP = c.CWP
	u.blockSeq = c.Seq
	u.blockIns = 0
	u.haveTag = true
	u.order = 0
	u.splits = 0
	u.renUsed = [NumRenameClasses]uint16{}
	u.renEpoch++
	u.renLive = 0
	if len(u.renameMap) > 0 {
		clear(u.renameMap)
	}
	u.currentCon = u.conservative[conKey(c.Addr, c.CWP)]
	if u.currentCon {
		u.Stats.ConservativeBl++
	}
}

// Flush ends the block under construction and returns it, or nil if the
// list is empty. nbaAddr is the SPARC address the block's next-block-
// address store receives: the address of the next instruction in the
// trace (on a VLIW Cache hit, the hit address, making the block point at
// the hit block, paper §3.6). endSeq is the sequence number of the
// instruction triggering the flush, which closes the block's trace span.
func (u *Scheduler) Flush(nbaAddr uint32, endSeq uint64) *Block {
	if len(u.elems) == 0 {
		return nil
	}
	return u.flush(nbaAddr, endSeq)
}

func (u *Scheduler) flush(nbaAddr uint32, endSeq uint64) *Block {
	if u.cfg.FaultSwapSlots || u.cfg.FaultLatencyViolation {
		u.injectFlushFaults()
	}
	// The block takes a compact copy of the slot grid (a pooled Height×Width
	// backing array, see takeBlock) so the element structs can be recycled
	// for the next block instead of being reallocated per long instruction.
	b := u.takeBlock(len(u.elems))
	b.Tag = u.blockTag
	b.EntryCWP = u.blockCWP
	b.NumLIs = len(u.elems)
	b.NBA = LongAddr{Addr: nbaAddr, Line: len(u.elems) - 1}
	b.Renames = u.renUsed
	b.Splits = u.splits
	b.FirstSeq = u.blockSeq
	b.EndSeq = endSeq
	b.Conservative = u.currentCon
	for i, e := range u.elems {
		copy(b.LIs[i], e.slots)
		b.ValidOps += e.occ
		u.releaseElement(e)
	}
	u.elems = u.elems[:0]
	u.haveTag = false
	if u.cfg.RecordTrace {
		b.Trace = u.trace
		u.trace = nil
	}
	// The strategy sees (and may rewrite) the finished block before flush
	// statistics and telemetry record its shape.
	u.strat.FinishBlock(u, b)
	u.Stats.BlocksFlushed++
	u.Stats.FlushedLIs += uint64(b.NumLIs)
	u.Stats.FlushedSlots += uint64(b.ValidOps)
	if u.tel != nil {
		u.tel.BlockFlushed(b.NumLIs, u.blockIns)
	}
	return b
}

// injectFlushFaults deliberately corrupts the finished schedule just
// before it is compacted into a Block, for blockcheck meta-tests. Each
// fault relocates one consumer into an illegal long instruction:
//
//   - FaultSwapSlots moves a consumer into the same long instruction as
//     one of its producers (a read-after-write violation);
//   - FaultLatencyViolation moves a consumer of a multicycle producer
//     into the producer's latency shadow.
//
// At most one slot is moved per block; blocks with no eligible victim
// pair flush unfaulted. The elements are about to be released, so only
// the aggregates flush still reads (slots, occ, occMask) are maintained;
// the moved slot's branch tag is recomputed for its destination so the
// injected violation stays surgical.
func (u *Scheduler) injectFlushFaults() {
	for i := 0; i < len(u.elems); i++ {
		p := u.elems[i]
		if p.occ == 0 {
			continue
		}
		for _, prod := range p.slots {
			if prod == nil || len(prod.writes) == 0 {
				continue
			}
			dstIdx := i
			if u.cfg.FaultLatencyViolation {
				if prod.LatOr1() < 2 {
					continue
				}
				dstIdx = i + 1 // strictly inside the latency shadow
			}
			for j := dstIdx + 1; j < len(u.elems); j++ {
				for cIdx, c := range u.elems[j].slots {
					if c == nil || c.IsCopy || c.IsMem || c.Inst.IsCTI() ||
						!overlapAny(c.reads, prod.writes) {
						continue
					}
					if u.relocateSlot(j, cIdx, dstIdx) {
						return
					}
				}
			}
		}
	}
}

// relocateSlot moves the slot at (srcElem, srcIdx) into a free
// class-compatible slot of dstElem, returning false if none is free.
func (u *Scheduler) relocateSlot(srcElem, srcIdx, dstElem int) bool {
	src, dst := u.elems[srcElem], u.elems[dstElem]
	c := src.slots[srcIdx]
	idx := u.freeSlot(dst, c.Inst.Class())
	if idx < 0 {
		return false
	}
	src.slots[srcIdx] = nil
	src.occ--
	src.occMask &^= 1 << uint(srcIdx)
	dst.slots[idx] = c
	dst.occ++
	dst.occMask |= 1 << uint(idx)
	var tag uint8
	for _, s := range dst.slots {
		if s != nil && s != c && s.IsCondOrIndirectBranch() && s.Seq < c.Seq {
			tag++
		}
	}
	c.Tag = tag
	return true
}

// Dump renders the scheduling list for debugging, in the style of the
// paper's Figure 2c.
func (u *Scheduler) Dump() string {
	out := ""
	for i, e := range u.elems {
		prefix := "     "
		if i == 0 {
			prefix = "slh->"
		}
		if i == len(u.elems)-1 {
			prefix = "slt->"
		}
		out += prefix
		for _, s := range e.slots {
			out += fmt.Sprintf(" | %-28s", s.String())
		}
		out += "\n"
	}
	return out
}
