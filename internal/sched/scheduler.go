package sched

import (
	"fmt"

	"dtsvliw/internal/isa"
)

// element is one scheduling-list entry: one long instruction under
// construction. The candidate-instruction machinery of the hardware is
// simulated by the insertion-time journey in Insert; settled slots are
// "installed" in the paper's sense.
type element struct {
	slots    []*Slot
	branches uint8 // conditional/indirect branches placed (tag counter)
}

func (e *element) hasStoreOrMemCopy() bool {
	for _, s := range e.slots {
		if s == nil {
			continue
		}
		if s.IsStore && !s.MemRenamed {
			return true
		}
		if s.IsCopy {
			for _, c := range s.Copies {
				if c.Loc.Kind == isa.LocMem {
					return true
				}
			}
		}
	}
	return false
}

func (e *element) hasLoad() bool {
	for _, s := range e.slots {
		if s != nil && !s.IsCopy && s.IsMem && !s.IsStore {
			return true
		}
	}
	return false
}

func (e *element) hasCondOrIndirectBranch() bool {
	for _, s := range e.slots {
		if s != nil && s.IsCondOrIndirectBranch() {
			return true
		}
	}
	return false
}

// Scheduler is the Scheduler Unit. Feed it Completed instructions with
// Insert; it returns finished Blocks when the scheduling list fills. Use
// Flush for externally triggered flushes (VLIW Cache hit, non-schedulable
// instruction).
type Scheduler struct {
	cfg   Config
	elems []*element // index 0 is the scheduling-list head

	blockTag   uint32
	blockCWP   uint8
	blockSeq   uint64
	haveTag    bool
	renUsed    [NumRenameClasses]uint16
	order      uint16
	splits     int
	currentCon bool

	// renameMap tracks, per architectural location, the renaming register
	// holding its newest value within the current block, so that later
	// consumers read the renaming register directly (paper Figure 2).
	// Memory locations are never forwarded (loads depend on the memory
	// copy instead).
	renameMap map[isa.Loc]RenameReg

	// conservative holds block tags (address plus entry window pointer)
	// that must be scheduled without load/store reordering after an
	// aliasing exception (paper §3.11).
	conservative map[uint64]bool

	Stats Stats
}

// New builds a Scheduler Unit.
func New(cfg Config) (*Scheduler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Scheduler{cfg: cfg, conservative: make(map[uint64]bool)}, nil
}

// Config returns the scheduler's configuration.
func (u *Scheduler) Config() Config { return u.cfg }

// Empty reports whether the scheduling list has no active elements.
func (u *Scheduler) Empty() bool { return len(u.elems) == 0 }

// Len returns the number of active scheduling-list elements.
func (u *Scheduler) Len() int { return len(u.elems) }

// MarkConservative requests conservative (in-order memory) scheduling for
// the block starting at tag with entry window pointer cwp, after an
// aliasing exception invalidated it.
func (u *Scheduler) MarkConservative(tag uint32, cwp uint8) {
	u.conservative[conKey(tag, cwp)] = true
}

func conKey(tag uint32, cwp uint8) uint64 { return uint64(tag)<<8 | uint64(cwp) }

// newElement appends a scheduling-list element.
func (u *Scheduler) newElement() *element {
	e := &element{slots: make([]*Slot, u.cfg.Width)}
	u.elems = append(u.elems, e)
	return e
}

// freeSlot returns the index of a free slot in e compatible with class cl,
// or -1.
func (u *Scheduler) freeSlot(e *element, cl isa.FUClass) int {
	for i, s := range e.slots {
		if s == nil && u.cfg.slotAccepts(i, cl) {
			return i
		}
	}
	return -1
}

// overlapAny reports whether any location in a overlaps any in b.
func overlapAny(a, b []isa.Loc) bool {
	for _, x := range a {
		for _, y := range b {
			if x.Overlaps(y) {
				return true
			}
		}
	}
	return false
}

// conflictingWrites returns the candidate write locations that overlap
// locs.
func conflictingWrites(cand *Slot, locs []isa.Loc) []isa.Loc {
	var out []isa.Loc
	for _, w := range cand.writes {
		for _, l := range locs {
			if w.Overlaps(l) {
				out = append(out, w)
				break
			}
		}
	}
	return out
}

// elemReads/elemWrites gather footprints of installed slots, excluding the
// candidate's own slot index (the hardware disables the comparators of the
// companion slot, paper §3.7).
func elemReads(e *element, exclude int) []isa.Loc {
	var out []isa.Loc
	for i, s := range e.slots {
		if s == nil || i == exclude {
			continue
		}
		out = append(out, s.reads...)
	}
	return out
}

func elemWrites(e *element, exclude int) []isa.Loc {
	var out []isa.Loc
	for i, s := range e.slots {
		if s == nil || i == exclude {
			continue
		}
		out = append(out, s.writes...)
	}
	return out
}

// trueDepBlocked reports whether the candidate may not occupy element
// target: a producer in element j whose result arrives after target
// (j + latency > target) writes one of the candidate's read locations.
// With all latencies 1 this reduces to the paper's check against the
// single element above (multicycle extension, companion study [14]).
func (u *Scheduler) trueDepBlocked(cand *Slot, target int) bool {
	lo := target - u.cfg.MaxLatency() + 1
	if lo < 0 {
		lo = 0
	}
	for j := lo; j <= target && j < len(u.elems); j++ {
		for _, w := range u.elems[j].slots {
			if w == nil || w == cand || j+w.LatOr1() <= target {
				continue
			}
			if overlapAny(cand.reads, w.writes) {
				return true
			}
		}
	}
	return false
}

// wawBlocked reports whether element target cannot hold cand because of a
// write-ordering hazard: an installed slot writing one of cand's write
// locations either shares the target element (two writes to one location
// cannot share a long instruction) or is an in-flight multicycle producer
// whose writeback lands strictly after cand's own (the delayed commit
// would clobber the younger value). With all latencies 1 this reduces to
// the paper's output-dependency rule against the tail element.
func (u *Scheduler) wawBlocked(cand *Slot, target int) bool {
	cl := cand.LatOr1()
	lo := target - u.cfg.MaxLatency() + 1
	if lo < 0 {
		lo = 0
	}
	for j := lo; j <= target && j < len(u.elems); j++ {
		for _, w := range u.elems[j].slots {
			if w == nil || w == cand {
				continue
			}
			if j != target && j+w.LatOr1() <= target+cl {
				continue // producer's writeback lands at or before cand's
			}
			if overlapAny(cand.writes, w.writes) {
				return true
			}
		}
	}
	return false
}

// wawCopyUnsafe reports whether moving cand out of element elemIdx is
// unsafe even with a split: an in-flight producer of one of cand's write
// locations commits strictly after the copy instruction (which stays
// behind in elemIdx) would, so renaming cannot restore write order and
// the candidate must be installed instead. Only latencies of three or
// more cycles can reach past the copy.
func (u *Scheduler) wawCopyUnsafe(cand *Slot, elemIdx int) bool {
	lo := elemIdx - u.cfg.MaxLatency() + 1
	if lo < 0 {
		lo = 0
	}
	for j := lo; j < elemIdx && j < len(u.elems); j++ {
		for _, w := range u.elems[j].slots {
			if w == nil || w == cand || j+w.LatOr1()-1 <= elemIdx {
				continue
			}
			if overlapAny(cand.writes, w.writes) {
				return true
			}
		}
	}
	return false
}

// horizonOutputConflicts returns the candidate's write locations that
// collide with an in-flight producer whose completion would land at or
// after the candidate's (write-ordering hazard); such outputs must be
// renamed by a split.
func (u *Scheduler) horizonOutputConflicts(cand *Slot, target int) []isa.Loc {
	lo := target - u.cfg.MaxLatency() + 1
	if lo < 0 {
		lo = 0
	}
	var locs []isa.Loc
	for j := lo; j <= target && j < len(u.elems); j++ {
		for _, w := range u.elems[j].slots {
			if w == nil || w == cand || j+w.LatOr1() <= target {
				continue
			}
			locs = append(locs, w.writes...)
		}
	}
	return conflictingWrites(cand, locs)
}

// memSerialized reports whether conservative scheduling forces an order
// dependency between the candidate and element e: after an aliasing
// exception the block keeps its loads and stores in insertion order by
// treating every memory pair as dependent (paper §3.11).
func (u *Scheduler) memSerialized(cand *Slot, e *element, exclude int) bool {
	if !u.currentCon || cand.IsCopy || !cand.IsMem {
		return false
	}
	for i, s := range e.slots {
		if s == nil || i == exclude {
			continue
		}
		if s.IsMem || (s.IsCopy && hasMemCopy(s)) {
			return true
		}
	}
	return false
}

func hasMemCopy(s *Slot) bool {
	for _, c := range s.Copies {
		if c.Loc.Kind == isa.LocMem {
			return true
		}
	}
	return false
}

// buildSlot constructs the Slot for a completed instruction, rewriting
// source operands whose newest in-block value lives in a renaming
// register, and retiring rename bindings superseded by this instruction's
// architectural writes.
func (u *Scheduler) buildSlot(c Completed) *Slot {
	s := &Slot{
		Inst: c.Inst,
		Addr: c.Addr,
		CWP:  c.CWP,
		Seq:  c.Seq,
		Lat:  u.cfg.latencyOf(&c.Inst),
	}
	eff := c.Inst.Effects(c.CWP, u.cfg.NWin, c.Outcome.EA)
	s.reads = eff.Reads
	s.writes = eff.Writes
	if len(u.renameMap) > 0 && !u.cfg.NoForwarding {
		for i, r := range s.reads {
			if r.Kind == isa.LocMem {
				continue
			}
			if reg, ok := u.renameMap[r]; ok {
				s.reads[i] = RenLoc(reg)
				s.SrcRenames = append(s.SrcRenames, RenamePair{Loc: r, Reg: reg})
			}
		}
		for _, w := range s.writes {
			delete(u.renameMap, w)
		}
	}
	if c.Inst.IsMem() {
		s.IsMem = true
		s.IsStore = c.Inst.IsStore()
		s.MemAddr = c.Outcome.EA
		s.MemSize = c.Inst.MemSize()
	}
	if c.Inst.IsCondBranch() || c.Inst.IsIndirectBranch() {
		s.BrTaken = c.Outcome.Taken
		s.BrTarget = c.Outcome.Target
	}
	return s
}

// cohabitCross updates the candidate's sticky cross bit on entering
// element e (paper §3.10; see DESIGN.md §5 for the store/load extension).
func cohabitCross(cand *Slot, e *element) {
	if !cand.IsMem || cand.Cross {
		return
	}
	if e.hasStoreOrMemCopy() {
		cand.Cross = true
		return
	}
	if cand.IsStore && e.hasLoad() {
		cand.Cross = true
	}
}

// place puts cand into a free slot of e with the element's current tag.
func (u *Scheduler) place(cand *Slot, e *element) int {
	idx := u.freeSlot(e, cand.Inst.Class())
	e.slots[idx] = cand
	cand.Tag = e.branches
	if cand.IsCondOrIndirectBranch() {
		e.branches++
	}
	cohabitCross(cand, e)
	return idx
}

// allocRename allocates a fresh renaming register for an architectural
// location.
func (u *Scheduler) allocRename(l isa.Loc) RenameReg {
	cl := classOf(l)
	r := RenameReg{Class: cl, Idx: u.renUsed[cl]}
	u.renUsed[cl]++
	if u.renUsed[cl] > u.Stats.MaxRenames[cl] {
		u.Stats.MaxRenames[cl] = u.renUsed[cl]
	}
	return r
}

// split renames the given outputs of cand and installs a copy instruction
// in cand's current slot of element e (paper §3.2). The copy keeps the
// element's current tag position and, for memory, the candidate's order
// and address for aliasing checks.
func (u *Scheduler) split(cand *Slot, e *element, slotIdx int, conflicted []isa.Loc) {
	copySlot := &Slot{
		Inst:   cand.Inst,
		Addr:   cand.Addr,
		CWP:    cand.CWP,
		Seq:    cand.Seq,
		Tag:    cand.Tag,
		IsCopy: true,
	}
	var remaining []isa.Loc
	for _, w := range cand.writes {
		conflict := w.Kind != isa.LocRen
		if conflict {
			conflict = false
			for _, cw := range conflicted {
				if w == cw {
					conflict = true
					break
				}
			}
		}
		if !conflict {
			remaining = append(remaining, w)
			continue
		}
		reg := u.allocRename(w)
		cand.Renames = append(cand.Renames, RenamePair{Loc: w, Reg: reg})
		copySlot.Copies = append(copySlot.Copies, RenamePair{Loc: w, Reg: reg})
		copySlot.reads = append(copySlot.reads, RenLoc(reg))
		if w.Kind != isa.LocMem && !u.cfg.NoForwarding {
			u.renameMap[w] = reg
			remaining = append(remaining, RenLoc(reg))
		}
		if w.Kind == isa.LocMem {
			cand.MemRenamed = true
			copySlot.IsMem = true
			copySlot.IsStore = true
			copySlot.MemAddr = cand.MemAddr
			copySlot.MemSize = cand.MemSize
			copySlot.Order = cand.Order
			copySlot.Cross = cand.Cross
		}
		copySlot.writes = append(copySlot.writes, w)
	}
	cand.writes = remaining
	if u.cfg.FaultDropCopy {
		// Fault injection (oracle meta-test): lose the copy instruction,
		// leaving the renamed values stranded in the renaming registers.
		e.slots[slotIdx] = nil
	} else {
		e.slots[slotIdx] = copySlot
	}
	u.splits++
	u.Stats.Splits++
}

// Insert feeds one completed instruction to the Scheduler Unit. If the
// scheduling list is full, the current block is flushed and returned (its
// NBA address field is the incoming instruction's address, which starts
// the fall-through block, paper §3.3); the instruction then begins a new
// block. Nops and unconditional direct branches are ignored (paper §3.9).
// Non-schedulable instructions must be handled by the caller via Flush
// before calling Insert.
func (u *Scheduler) Insert(c Completed) (*Block, error) {
	if c.Inst.IsNop() || c.Inst.IsUncondBranch() {
		u.Stats.Ignored++
		return nil, nil
	}
	if !c.Inst.IsSchedulable() {
		return nil, fmt.Errorf("sched: non-schedulable %v at %#08x reached Insert", c.Inst.Op, c.Addr)
	}

	var flushed *Block
	cand := u.buildSlot(c)

	if len(u.elems) == 0 {
		u.startBlock(c)
		// Rename bindings never cross blocks: rebuild the slot against
		// the fresh (empty) rename map.
		cand = u.buildSlot(c)
	} else {
		tail := u.elems[len(u.elems)-1]
		if u.needsNewElement(cand, tail) {
			if len(u.elems) >= u.cfg.Height {
				flushed = u.flush(c.Addr, c.Seq)
				u.startBlock(c)
				cand = u.buildSlot(c)
			} else {
				u.newElement()
				// Multicycle producers may require further padding
				// elements before the candidate's reads are satisfied and
				// in-flight writebacks of its output locations have landed.
				for u.trueDepBlocked(cand, len(u.elems)-1) ||
					u.wawBlocked(cand, len(u.elems)-1) {
					if len(u.elems) >= u.cfg.Height {
						flushed = u.flush(c.Addr, c.Seq)
						u.startBlock(c)
						cand = u.buildSlot(c)
						break
					}
					u.newElement()
				}
			}
		}
	}

	if cand.IsMem {
		cand.Order = u.order
		u.order++
	}

	tailIdx := len(u.elems) - 1
	slotIdx := u.place(cand, u.elems[tailIdx])
	u.Stats.Inserted++

	u.moveUp(cand, tailIdx, slotIdx)
	return flushed, nil
}

// needsNewElement applies the insertion rule: a new tail element is needed
// on a true dependency, an output dependency (two writes to one location
// cannot share a long instruction), a resource shortage, or conservative
// memory serialisation. Anti and control dependencies do not block
// placement in the tail: the read-before-write long-instruction semantics
// and the branch-tag system make such placement safe (paper §3.8). The
// latency horizon covers in-flight multicycle producers.
func (u *Scheduler) needsNewElement(cand *Slot, tail *element) bool {
	if u.freeSlot(tail, cand.Inst.Class()) < 0 {
		return true
	}
	t := len(u.elems) - 1
	if u.trueDepBlocked(cand, t) {
		return true
	}
	if u.wawBlocked(cand, t) {
		return true
	}
	return u.memSerialized(cand, tail, -1)
}

// moveUp walks the candidate up the scheduling list until installed,
// applying the paper's install/split/move rules at each element boundary.
func (u *Scheduler) moveUp(cand *Slot, elemIdx, slotIdx int) {
	if cand.Inst.IsCTI() {
		u.Stats.Installs++
		return // control-transfer instructions never move (paper §3.8)
	}
	for elemIdx > 0 {
		cur := u.elems[elemIdx]
		prev := u.elems[elemIdx-1]

		// Install on true dependency or resource dependency (paper §3.7:
		// "if the install and the split signals are both true the
		// respective candidate instruction is only installed"). The
		// dependency horizon covers multicycle producers.
		if u.trueDepBlocked(cand, elemIdx-1) ||
			u.freeSlot(prev, cand.Inst.Class()) < 0 ||
			u.memSerialized(cand, prev, -1) ||
			u.wawCopyUnsafe(cand, elemIdx) {
			break
		}

		// Split on output dependency with i-1 (or any in-flight producer
		// completing at/after the candidate), anti dependency with i, or
		// control dependency with i (paper §3.2).
		outConf := u.horizonOutputConflicts(cand, elemIdx-1)
		antiConf := conflictingWrites(cand, elemReads(cur, slotIdx))
		needAll := cur.hasCondOrIndirectBranch()
		if len(outConf) > 0 || len(antiConf) > 0 || needAll {
			var conflicted []isa.Loc
			if needAll {
				for _, w := range cand.writes {
					if w.Kind != isa.LocRen {
						conflicted = append(conflicted, w)
					}
				}
			} else {
				seen := map[isa.Loc]bool{}
				for _, l := range append(outConf, antiConf...) {
					if !seen[l] {
						seen[l] = true
						conflicted = append(conflicted, l)
					}
				}
			}
			if len(conflicted) > 0 {
				u.split(cand, cur, slotIdx, conflicted)
			} else {
				// Nothing left to protect (all outputs already renamed):
				// the move is safe without a new copy.
				cur.slots[slotIdx] = nil
			}
		} else {
			cur.slots[slotIdx] = nil
		}

		// Move into the previous element.
		slotIdx = u.freeSlot(prev, cand.Inst.Class())
		prev.slots[slotIdx] = cand
		cand.Tag = prev.branches
		cohabitCross(cand, prev)
		elemIdx--
		u.Stats.MoveUps++
	}
	u.Stats.Installs++
}

// startBlock begins a new block with c as its first instruction.
func (u *Scheduler) startBlock(c Completed) {
	u.newElement()
	u.blockTag = c.Addr
	u.blockCWP = c.CWP
	u.blockSeq = c.Seq
	u.haveTag = true
	u.order = 0
	u.splits = 0
	u.renUsed = [NumRenameClasses]uint16{}
	u.renameMap = make(map[isa.Loc]RenameReg)
	u.currentCon = u.conservative[conKey(c.Addr, c.CWP)]
	if u.currentCon {
		u.Stats.ConservativeBl++
	}
}

// Flush ends the block under construction and returns it, or nil if the
// list is empty. nbaAddr is the SPARC address the block's next-block-
// address store receives: the address of the next instruction in the
// trace (on a VLIW Cache hit, the hit address, making the block point at
// the hit block, paper §3.6). endSeq is the sequence number of the
// instruction triggering the flush, which closes the block's trace span.
func (u *Scheduler) Flush(nbaAddr uint32, endSeq uint64) *Block {
	if len(u.elems) == 0 {
		return nil
	}
	return u.flush(nbaAddr, endSeq)
}

func (u *Scheduler) flush(nbaAddr uint32, endSeq uint64) *Block {
	b := &Block{
		Tag:          u.blockTag,
		EntryCWP:     u.blockCWP,
		NumLIs:       len(u.elems),
		NBA:          LongAddr{Addr: nbaAddr, Line: len(u.elems) - 1},
		Renames:      u.renUsed,
		Splits:       u.splits,
		FirstSeq:     u.blockSeq,
		EndSeq:       endSeq,
		Conservative: u.currentCon,
	}
	b.LIs = make([][]*Slot, len(u.elems))
	for i, e := range u.elems {
		b.LIs[i] = e.slots
		for _, s := range e.slots {
			if s != nil {
				b.ValidOps++
			}
		}
	}
	u.elems = nil
	u.haveTag = false
	u.Stats.BlocksFlushed++
	u.Stats.FlushedLIs += uint64(b.NumLIs)
	u.Stats.FlushedSlots += uint64(b.ValidOps)
	return b
}

// Dump renders the scheduling list for debugging, in the style of the
// paper's Figure 2c.
func (u *Scheduler) Dump() string {
	out := ""
	for i, e := range u.elems {
		prefix := "     "
		if i == 0 {
			prefix = "slh->"
		}
		if i == len(u.elems)-1 {
			prefix = "slt->"
		}
		out += prefix
		for _, s := range e.slots {
			out += fmt.Sprintf(" | %-28s", s.String())
		}
		out += "\n"
	}
	return out
}
