package sched

import (
	"strings"
	"testing"

	"dtsvliw/internal/arch"
	"dtsvliw/internal/asm"
	"dtsvliw/internal/isa"
	"dtsvliw/internal/mem"
)

// feed executes source sequentially and inserts every completed
// instruction into a fresh scheduler, returning the scheduler, any blocks
// flushed on the way, and the final state.
func feed(t *testing.T, cfg Config, source string, maxInstr int) (*Scheduler, []*Block, *arch.State) {
	t.Helper()
	p, err := asm.Assemble(source)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m := mem.NewMemory()
	p.Load(m)
	m.Map(0x7F000, 0x1000)
	st := arch.NewState(cfg.NWin, m)
	st.PC = p.Entry
	st.SetReg(14, 0x7FF00)
	st.SetTextRange(p.TextBase, p.TextSize)

	u, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var blocks []*Block
	for i := 0; i < maxInstr && !st.Halted; i++ {
		pc := st.PC
		cwp := st.CWP()
		in, out, err := st.StepOutcome()
		if err != nil {
			t.Fatalf("step: %v", err)
		}
		if !in.IsSchedulable() {
			if b := u.Flush(pc, uint64(i)); b != nil {
				blocks = append(blocks, b)
			}
			continue
		}
		b, err := u.Insert(Completed{Inst: in, Addr: pc, CWP: cwp, Outcome: out, Seq: uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
		if b != nil {
			blocks = append(blocks, b)
		}
	}
	return u, blocks, st
}

func cfg44() Config { return Config{Width: 3, Height: 4, NWin: 8} }

// TestFigure2Schedule replays the paper's Figure 2 example on a
// 3-wide/4-deep list and checks the published placements: instructions 1
// and 2 share the first long instruction, instruction 3 (flow dependent
// on r8) opens the second, the ld lands beside it, and `add r10,4,r10`
// splits on the anti dependency with the ld, leaving a copy.
func TestFigure2Schedule(t *testing.T) {
	src := `
	.data 0x40400
vec:	.word 1, 2, 3, 4
	.text 0x1000
start:
	or %g0, 0, %o1       ! 1: sum = 0          (r9 in the paper)
	sethi %hi(0x40000), %o0 ! 2: temp          (r8)
	or %o0, 0x400, %o3   ! 3: *a               (r11) flow dep on r8
	or %g0, 0, %o2       ! 4: 4*i = 0          (r10)
loop:
	ld [%o2+%o3], %o0    ! 5
	add %o1, %o0, %o1    ! 6
	add %o2, 4, %o2      ! 7: anti dep on ld's address read
	subcc %o2, 15, %g0   ! 8
	ble loop             ! 9
	nop                  ! 10: ignored by the scheduler
	ta 0
`
	u, _, _ := feed(t, cfg44(), src, 8) // through subcc, list still live
	if u.Len() < 3 {
		t.Fatalf("list too short: %d elements\n%s", u.Len(), u.Dump())
	}
	dump := u.Dump()
	// Element 0 must hold instructions 1 and 2 side by side.
	head := u.elems[0]
	if countValid(head) < 2 {
		t.Fatalf("head element should hold or+sethi:\n%s", dump)
	}
	// A split must have produced a COPY for add %o2,4,%o2 (anti dep with
	// the ld reading %o2).
	if u.Stats.Splits == 0 {
		t.Fatalf("expected the paper's split of add r10,4,r10:\n%s", dump)
	}
	if !strings.Contains(dump, "COPY") {
		t.Fatalf("no copy instruction in list:\n%s", dump)
	}
}

// countValid counts occupied slots.
func countValid(e *element) int {
	n := 0
	for _, s := range e.slots {
		if s != nil {
			n++
		}
	}
	return n
}

// TestTrueDependencyInstalls: a flow-dependent chain occupies one element
// per instruction even on a wide machine.
func TestTrueDependencyInstalls(t *testing.T) {
	src := `
	.text 0x1000
start:
	add %g1, 1, %g2
	add %g2, 1, %g3
	add %g3, 1, %g4
	ta 0
`
	u, _, _ := feed(t, Config{Width: 8, Height: 8, NWin: 8}, src, 3)
	if u.Len() != 3 {
		t.Fatalf("chain of 3 should occupy 3 elements, got %d\n%s", u.Len(), u.Dump())
	}
}

// TestIndependentOpsShareElement: independent instructions pack into one
// long instruction.
func TestIndependentOpsShareElement(t *testing.T) {
	src := `
	.text 0x1000
start:
	add %g1, 1, %g2
	add %g3, 1, %g4
	add %o0, 1, %o1
	add %o2, 1, %o3
	ta 0
`
	u, _, _ := feed(t, Config{Width: 8, Height: 8, NWin: 8}, src, 4)
	if u.Len() != 1 {
		t.Fatalf("independent ops should share one element, got %d\n%s", u.Len(), u.Dump())
	}
	if countValid(u.elems[0]) != 4 {
		t.Fatalf("want 4 ops in head:\n%s", u.Dump())
	}
}

// TestResourceDependencyOpensElement: a full long instruction forces the
// next element even without data dependencies.
func TestResourceDependencyOpensElement(t *testing.T) {
	src := `
	.text 0x1000
start:
	add %g1, 1, %g2
	add %g3, 1, %g4
	add %o0, 1, %o1
	ta 0
`
	u, _, _ := feed(t, Config{Width: 2, Height: 8, NWin: 8}, src, 3)
	if u.Len() != 2 || countValid(u.elems[0]) != 2 || countValid(u.elems[1]) != 1 {
		t.Fatalf("resource overflow wrong:\n%s", u.Dump())
	}
}

// TestCTIsDoNotMoveUp: a conditional branch stays put even when slots are
// free above.
func TestCTIsDoNotMoveUp(t *testing.T) {
	src := `
	.text 0x1000
start:
	cmp %g1, %g2
	bne skip             ! %g1 == %g2, so not taken: the add executes
	add %g3, 1, %g3
skip:
	ta 0
`
	u, _, _ := feed(t, Config{Width: 8, Height: 8, NWin: 8}, src, 3)
	// cmp writes icc; be reads icc -> element 1; add is control-gated in
	// the same element as be (tag system), not above the cmp.
	if u.Len() != 2 {
		t.Fatalf("want 2 elements:\n%s", u.Dump())
	}
	be := findOp(u, isa.OpBICC)
	if be == nil {
		t.Fatal("branch not scheduled")
	}
	if be.Tag != 0 {
		t.Fatalf("branch tag %d, want 0", be.Tag)
	}
}

func findOp(u *Scheduler, op isa.Op) *Slot {
	for _, e := range u.elems {
		for _, s := range e.slots {
			if s != nil && !s.IsCopy && s.Inst.Op == op {
				return s
			}
		}
	}
	return nil
}

// TestTagsGateSameLIPlacement: instructions after a branch placed in the
// branch's long instruction carry a higher tag.
func TestTagsGateSameLIPlacement(t *testing.T) {
	src := `
	.text 0x1000
start:
	cmp %g1, %g2
	bne skip             ! not taken
	add %g3, 1, %g4
skip:
	add %o0, 1, %o1
	ta 0
`
	u, _, _ := feed(t, Config{Width: 8, Height: 8, NWin: 8}, src, 4)
	be := findOp(u, isa.OpBICC)
	if be == nil {
		t.Fatal("no branch")
	}
	// Both adds are after the branch in the trace; wherever they sit in
	// the branch's element they must have tag > branch tag.
	for _, e := range u.elems {
		hasBranch := false
		for _, s := range e.slots {
			if s == be {
				hasBranch = true
			}
		}
		if !hasBranch {
			continue
		}
		for _, s := range e.slots {
			if s == nil || s == be || s.IsCopy {
				continue
			}
			if s.Seq > be.Seq && s.Tag <= be.Tag {
				t.Fatalf("younger op %v has tag %d <= branch tag %d", s, s.Tag, be.Tag)
			}
		}
	}
}

// TestControlSplitRenamesAllOutputs: crossing a branch element renames
// every architectural output and leaves a copy behind.
func TestControlSplitRenamesAllOutputs(t *testing.T) {
	src := `
	.text 0x1000
start:
	cmp %g1, %g2
	be skip
skip:
	addcc %o0, 1, %o1    ! writes %o1 and icc; moving above ` + "`be`" + ` splits both
	ta 0
`
	u, _, _ := feed(t, Config{Width: 8, Height: 8, NWin: 8}, src, 3)
	addcc := findOp(u, isa.OpADDCC)
	if addcc == nil {
		t.Fatal("addcc not found")
	}
	if len(addcc.Renames) != 2 {
		t.Fatalf("addcc renames = %v, want both %%o1 and icc renamed\n%s",
			addcc.Renames, u.Dump())
	}
	classes := map[RenameClass]bool{}
	for _, r := range addcc.Renames {
		classes[r.Reg.Class] = true
	}
	if !classes[RenInt] || !classes[RenFlag] {
		t.Fatalf("rename classes: %v", addcc.Renames)
	}
}

// TestSourceForwarding reproduces the paper's Figure 2 consumer rewrite:
// after add r10,4,r10 splits, the subcc reads the renaming register.
func TestSourceForwarding(t *testing.T) {
	src := `
	.data 0x40400
vec:	.word 1, 2, 3, 4
	.text 0x1000
start:
	sethi %hi(0x40000), %o4
	or %o4, 0x400, %o3
	or %g0, 0, %o2
	ld [%o2+%o3], %o0
	add %o2, 4, %o2      ! splits on anti dep with the ld
	subcc %o2, 15, %g0   ! must read the renaming register (paper's r32)
	ta 0
`
	u, _, _ := feed(t, cfg44(), src, 6)
	subcc := findOp(u, isa.OpSUBCC)
	if subcc == nil {
		t.Fatalf("subcc missing:\n%s", u.Dump())
	}
	if len(subcc.SrcRenames) == 0 {
		t.Fatalf("subcc should source-forward from the rename register:\n%s", u.Dump())
	}
}

// TestLoadStoreOrderAndCross checks order fields and sticky cross bits.
func TestLoadStoreOrderAndCross(t *testing.T) {
	src := `
	.data 0x40000
buf:	.space 64
	.text 0x1000
start:
	set buf, %g5
	st %g1, [%g5]        ! order 0
	ld [%g5+8], %g2      ! order 1: different address, moves past the store
	ld [%g5+16], %g3     ! order 2
	ta 0
`
	u, _, _ := feed(t, Config{Width: 8, Height: 8, NWin: 8}, src, 5)
	var store, ld1 *Slot
	for _, e := range u.elems {
		for _, s := range e.slots {
			if s == nil || s.IsCopy {
				continue
			}
			switch {
			case s.Inst.Op == isa.OpST:
				store = s
			case s.Inst.Op == isa.OpLD && s.Order == 1:
				ld1 = s
			}
		}
	}
	if store == nil || ld1 == nil {
		t.Fatalf("ops missing:\n%s", u.Dump())
	}
	if store.Order != 0 {
		t.Fatalf("store order %d", store.Order)
	}
	if !ld1.Cross {
		t.Fatalf("load that cohabited with a store must have its cross bit set:\n%s", u.Dump())
	}
}

// TestFlushSemantics checks block metadata: tag, entry CWP, nba, trace
// span and the full-list flush path.
func TestFlushSemantics(t *testing.T) {
	src := `
	.text 0x1000
start:
	add %g1, 1, %g1
	add %g1, 1, %g1
	add %g1, 1, %g1
	add %g1, 1, %g1
	add %g1, 1, %g1
	ta 0
`
	_, blocks, _ := feed(t, Config{Width: 2, Height: 4, NWin: 8}, src, 5)
	if len(blocks) != 1 {
		t.Fatalf("want 1 full-flush block, got %d", len(blocks))
	}
	b := blocks[0]
	if b.Tag != 0x1000 {
		t.Errorf("tag %#x", b.Tag)
	}
	if b.NumLIs != 4 {
		t.Errorf("numLIs %d", b.NumLIs)
	}
	if b.NBA.Addr != 0x1010 || b.NBA.Line != 3 {
		t.Errorf("nba %v", b.NBA)
	}
	if b.FirstSeq != 0 || b.EndSeq != 4 {
		t.Errorf("trace span [%d,%d)", b.FirstSeq, b.EndSeq)
	}
	if b.ValidOps != 4 {
		t.Errorf("validOps %d", b.ValidOps)
	}
}

// TestConservativeMode: after MarkConservative the block keeps memory
// operations strictly ordered.
func TestConservativeMode(t *testing.T) {
	src := `
	.data 0x40000
buf:	.space 64
	.text 0x1000
start:
	set buf, %g5
	st %g1, [%g5]
	ld [%g5+8], %g2
	ld [%g5+16], %g3
	ta 0
`
	cfg := Config{Width: 8, Height: 8, NWin: 8}
	// First, unconstrained: the two loads join the store's element.
	u1, _, _ := feed(t, cfg, src, 6)
	memElems1 := elementsWithMem(u1)

	// Now conservative for the block starting at the first instruction.
	p, _ := asm.Assemble(src)
	u2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	u2.MarkConservative(p.Entry, 0)
	m := mem.NewMemory()
	p.Load(m)
	st := arch.NewState(cfg.NWin, m)
	st.PC = p.Entry
	st.SetTextRange(p.TextBase, p.TextSize)
	for i := 0; i < 6 && !st.Halted; i++ {
		pc, cwp := st.PC, st.CWP()
		in, out, err := st.StepOutcome()
		if err != nil {
			t.Fatal(err)
		}
		if !in.IsSchedulable() {
			break
		}
		if _, err := u2.Insert(Completed{Inst: in, Addr: pc, CWP: cwp, Outcome: out, Seq: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	memElems2 := elementsWithMem(u2)
	if memElems2 <= memElems1 {
		t.Fatalf("conservative scheduling should serialise memory: %d vs %d elements\n%s",
			memElems2, memElems1, u2.Dump())
	}
	if u2.Stats.ConservativeBl != 1 {
		t.Errorf("conservative blocks = %d", u2.Stats.ConservativeBl)
	}
}

func elementsWithMem(u *Scheduler) int {
	n := 0
	for _, e := range u.elems {
		for _, s := range e.slots {
			if s != nil && s.IsMem {
				n++
				break
			}
		}
	}
	return n
}

// TestUncondBranchIgnored: ba and nop never occupy slots.
func TestUncondBranchIgnored(t *testing.T) {
	src := `
	.text 0x1000
start:
	add %g1, 1, %g1
	ba next
next:
	nop
	add %g1, 1, %g1
	ta 0
`
	u, _, _ := feed(t, Config{Width: 4, Height: 4, NWin: 8}, src, 4)
	total := 0
	for _, e := range u.elems {
		total += countValid(e)
	}
	if total != 2 {
		t.Fatalf("slots used = %d, want 2 (ba and nop ignored)\n%s", total, u.Dump())
	}
	if u.Stats.Ignored != 2 {
		t.Fatalf("ignored = %d", u.Stats.Ignored)
	}
}

// TestConfigValidation rejects impossible FU assignments.
func TestConfigValidation(t *testing.T) {
	bad := Config{Width: 2, Height: 4, NWin: 8,
		FUs: []isa.FUClass{isa.FUInt, isa.FUInt}} // no branch/ld-st/fp slots
	if err := bad.Validate(); err == nil {
		t.Error("config without load/store slots must be rejected")
	}
	good := Config{Width: 2, Height: 4, NWin: 8,
		FUs: []isa.FUClass{isa.FUAny, isa.FUBranch}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

// TestProgramOrderInvariant is the structural property over random-ish
// streams: a slot never reads a location written by an older instruction
// placed in the same or a later long instruction (read-before-write makes
// same-LI anti-dependencies legal; flow must cross LIs).
func TestProgramOrderInvariant(t *testing.T) {
	src := `
	.data 0x40000
buf:	.space 256
	.text 0x1000
start:
	set buf, %g5
	mov 20, %l7
loop:
	and %l7, 0x3C, %g1
	st %l7, [%g5+%g1]
	ld [%g5+8], %g2
	add %g2, %l7, %g3
	xor %g3, %g1, %g4
	subcc %l7, 1, %l7
	bg loop
	ta 0
`
	_, blocks, _ := feed(t, Config{Width: 4, Height: 6, NWin: 8}, src, 400)
	checked := 0
	for _, b := range blocks {
		for li := 0; li < b.NumLIs; li++ {
			for _, s := range b.LIs[li] {
				if s == nil {
					continue
				}
				for lj := li; lj < b.NumLIs; lj++ {
					for _, w := range b.LIs[lj] {
						if w == nil || w == s || w.Seq >= s.Seq {
							continue
						}
						// w is older; s must not flow-depend on w unless w
						// is in an earlier LI.
						for _, rd := range s.Reads() {
							for _, wr := range w.Writes() {
								if rd.Overlaps(wr) {
									t.Fatalf("block %#x: slot %v (LI %d) reads %v written by older %v in LI %d",
										b.Tag, s, li, rd, w, lj)
								}
								checked++
							}
						}
					}
				}
			}
		}
	}
	if len(blocks) == 0 {
		t.Fatal("no blocks flushed")
	}
}
