package sched

import (
	"testing"

	"dtsvliw/internal/arch"
	"dtsvliw/internal/asm"
	"dtsvliw/internal/isa"
	"dtsvliw/internal/mem"
	"dtsvliw/internal/progen"
)

// feedEvent is one pre-recorded Scheduler Unit stimulus: either a completed
// schedulable instruction or a flush (non-schedulable instruction reached).
type feedEvent struct {
	flush bool
	c     Completed
}

// feedConfig is the scheduler geometry the feed benchmarks run under: the
// feasible machine's 10x8 block with its heterogeneous functional units.
func feedConfig() Config {
	return Config{
		Width: 10, Height: 8, NWin: 8,
		FUs: []isa.FUClass{
			isa.FUInt, isa.FUInt, isa.FUInt, isa.FUInt,
			isa.FULoadStore, isa.FULoadStore,
			isa.FUFloat, isa.FUFloat,
			isa.FUBranch, isa.FUBranch,
		},
	}
}

// recordTrace executes a seeded progen program sequentially and records the
// exact stimulus stream the Primary Processor would feed the Scheduler
// Unit, so benchmark iterations measure scheduler cost alone.
func recordTrace(tb testing.TB, shape progen.Shape, seed int64, maxInstr int) []feedEvent {
	tb.Helper()
	src := progen.Generate(progen.ShapeParams(shape, seed))
	p, err := asm.Assemble(src)
	if err != nil {
		tb.Fatalf("assemble: %v", err)
	}
	m := mem.NewMemory()
	p.Load(m)
	m.Map(0x7E000, 0x2000)
	st := arch.NewState(8, m)
	st.PC = p.Entry
	st.SetReg(14, 0x7FF00)
	st.SetTextRange(p.TextBase, p.TextSize)

	var events []feedEvent
	for i := 0; i < maxInstr && !st.Halted; i++ {
		pc := st.PC
		cwp := st.CWP()
		in, out, err := st.StepOutcome()
		if err != nil {
			tb.Fatalf("step %d: %v", i, err)
		}
		if !in.IsSchedulable() {
			events = append(events, feedEvent{flush: true, c: Completed{Addr: pc, Seq: uint64(i)}})
			continue
		}
		events = append(events, feedEvent{
			c: Completed{Inst: in, Addr: pc, CWP: cwp, Outcome: out, Seq: uint64(i)},
		})
	}
	if len(events) == 0 {
		tb.Fatalf("empty trace for shape %v seed %d", shape, seed)
	}
	return events
}

// replay feeds one recorded trace through a scheduler.
func replay(tb testing.TB, u *Scheduler, events []feedEvent) {
	for i := range events {
		ev := &events[i]
		if ev.flush {
			u.Flush(ev.c.Addr, ev.c.Seq)
			continue
		}
		if _, err := u.Insert(ev.c); err != nil {
			tb.Fatal(err)
		}
	}
	u.Flush(0, uint64(len(events)))
}

// BenchmarkSchedulerFeed measures the Scheduler Unit's insertion hot path
// (dependency checks, move-up/install/split decisions, renaming) on
// pre-recorded traces of every progen hazard shape. ns/op is per completed
// instruction fed; allocs/op tracks the allocation trajectory of the hot
// path (see BENCH_SCHED.json for the recorded baselines).
func BenchmarkSchedulerFeed(b *testing.B) {
	for _, shape := range progen.Shapes() {
		cfg := feedConfig()
		if shape == progen.ShapeMulticycle {
			cfg.LoadLatency = 2
			cfg.FPLatency = 3
			cfg.FPDivLatency = 8
		}
		events := recordTrace(b, shape, 1, 40_000)
		b.Run(shape.String(), func(b *testing.B) {
			u, err := New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				replay(b, u, events)
			}
			b.StopTimer()
			perInstr := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / float64(len(events))
			b.ReportMetric(perInstr, "ns/instr")
		})
	}
}

// BenchmarkSchedulerFeedFresh is the cold variant: a fresh Scheduler per
// iteration, so per-block and per-scheduler allocations are charged too.
func BenchmarkSchedulerFeedFresh(b *testing.B) {
	events := recordTrace(b, progen.ShapeMixed, 1, 40_000)
	b.Run("mixed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			u, err := New(feedConfig())
			if err != nil {
				b.Fatal(err)
			}
			replay(b, u, events)
		}
	})
}
