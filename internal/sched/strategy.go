package sched

import (
	"fmt"
	"sort"
)

// Strategy is the pluggable placement policy of the Scheduler Unit. The
// scheduling machinery — slot construction, renaming, splits, dependency
// signatures, legality predicates, block compaction — is shared; a
// strategy only answers the policy questions the hardware's FCFS
// comparator network hard-wires. Every decision a strategy makes is
// clamped by the legality machinery: a strategy can refuse parallelism
// the scheduler would have exploited, but it can never force an illegal
// placement, so every Block any strategy emits satisfies the same
// dependence, resource and speculation constraints the static verifier
// (internal/blockcheck) checks.
//
// Strategies must be deterministic: the differential oracle and the
// parallel experiment driver both rely on byte-identical re-runs.
type Strategy interface {
	// Name returns the registry name the strategy was constructed under.
	Name() string

	// WantFlushBefore is consulted when a new candidate arrives while the
	// scheduling list is non-empty, before the candidate's slot is built:
	// returning true flushes the current block first, so the candidate
	// starts a fresh one. The FCFS hardware never does this; degenerate
	// reference strategies (one instruction per block) are built from it.
	WantFlushBefore(u *Scheduler, c *Completed) bool

	// WantNewElement is consulted only after the legality machinery has
	// proven the candidate may occupy the tail element: returning true
	// opens a new tail element anyway (trading ILP away). It is never
	// consulted when a new element is forced by a dependency or resource
	// shortage.
	WantNewElement(u *Scheduler) bool

	// WantMoveUp is consulted at each element boundary of the insertion
	// journey, only after the legality machinery has proven the move to
	// element elemIdx-1 is possible: returning false installs the
	// candidate where it is. The FCFS hardware always moves.
	WantMoveUp(u *Scheduler, elemIdx int) bool

	// FinishBlock observes — and may rewrite — every flushed block before
	// it leaves the scheduler, after the slot grid has been compacted but
	// before flush statistics are recorded. A rewriting strategy (the
	// offline optimal repacker in internal/optsched) must keep the block
	// legal: save-time verification and the conformance suites hold every
	// strategy to the blockcheck constraint set.
	FinishBlock(u *Scheduler, b *Block)
}

// StrategyFactory builds a strategy instance for one scheduler. The
// scheduler configuration carries the strategy parameters (StrategyBudget
// for search-based strategies).
type StrategyFactory func(cfg Config) Strategy

// strategyRegistry maps registry names to factories. Registration
// happens in package init functions (this package registers "fcfs" and
// "one-per-block"; internal/optsched registers "optimal"), so lookups
// never race.
var strategyRegistry = map[string]StrategyFactory{}

// RegisterStrategy adds a strategy factory under name. It panics on
// duplicates: strategy names select scheduling behaviour in experiment
// matrices and CI jobs, so a silent overwrite would corrupt results.
func RegisterStrategy(name string, f StrategyFactory) {
	if _, dup := strategyRegistry[name]; dup {
		panic(fmt.Sprintf("sched: strategy %q registered twice", name))
	}
	strategyRegistry[name] = f
}

// StrategyNames lists the registered strategies, sorted.
func StrategyNames() []string {
	names := make([]string, 0, len(strategyRegistry))
	for name := range strategyRegistry { //determinism:allow sorted below
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// DefaultStrategy is the strategy an empty Config.Strategy selects: the
// paper's hardware First-Come-First-Served placement.
const DefaultStrategy = "fcfs"

// newStrategy resolves cfg.Strategy against the registry.
func newStrategy(cfg Config) (Strategy, error) {
	name := cfg.Strategy
	if name == "" {
		name = DefaultStrategy
	}
	f, ok := strategyRegistry[name]
	if !ok {
		return nil, fmt.Errorf("sched: unknown strategy %q (registered: %v)", name, StrategyNames())
	}
	return f(cfg), nil
}

func init() {
	RegisterStrategy("fcfs", func(Config) Strategy { return fcfsStrategy{} })
	RegisterStrategy("one-per-block", func(Config) Strategy { return onePerBlockStrategy{} })
}

// fcfsStrategy is the paper's hardware algorithm: greedy
// first-come-first-served list scheduling. It never flushes early, never
// declines the tail element, and always moves a candidate as high as the
// legality machinery allows — so with this strategy the scheduler's
// behaviour is exactly the pre-Strategy implementation, byte for byte
// (TestGoldenFCFSBlocks), and the insertion hot path stays zero-alloc
// (TestDependencyChecksZeroAlloc).
type fcfsStrategy struct{}

func (fcfsStrategy) Name() string                                { return "fcfs" }
func (fcfsStrategy) WantFlushBefore(*Scheduler, *Completed) bool { return false }
func (fcfsStrategy) WantNewElement(*Scheduler) bool              { return false }
func (fcfsStrategy) WantMoveUp(*Scheduler, int) bool             { return true }
func (fcfsStrategy) FinishBlock(*Scheduler, *Block)              {}

// onePerBlockStrategy is the deliberately dumb reference strategy: every
// block holds exactly one scheduled instruction. It anchors the strategy
// conformance suite (any strategy must stay correct, however little ILP
// it extracts) and gives gap studies an absolute lower bound.
type onePerBlockStrategy struct{}

func (onePerBlockStrategy) Name() string { return "one-per-block" }
func (onePerBlockStrategy) WantFlushBefore(u *Scheduler, _ *Completed) bool {
	return len(u.elems) > 0
}
func (onePerBlockStrategy) WantNewElement(*Scheduler) bool  { return false }
func (onePerBlockStrategy) WantMoveUp(*Scheduler, int) bool { return false }
func (onePerBlockStrategy) FinishBlock(*Scheduler, *Block)  {}

// NoteRepack records a FinishBlock rewrite for statistics and telemetry:
// the block went from origLIs to b.NumLIs long instructions, proven
// optimal (versus best-found under an exhausted node budget) after
// visiting nodes search nodes.
func (u *Scheduler) NoteRepack(b *Block, origLIs int, proven bool, nodes uint64) {
	u.Stats.RepackedBlocks++
	u.Stats.RepackSavedLIs += uint64(origLIs - b.NumLIs)
	u.Stats.RepackNodes += nodes
	if proven {
		u.Stats.RepackProven++
	}
	if u.tel != nil {
		u.tel.SchedGap(b.Tag, origLIs, b.NumLIs, proven)
	}
}
