package sched

import (
	"math/bits"
	"math/rand"
	"testing"

	"dtsvliw/internal/isa"
	"dtsvliw/internal/progen"
)

// randLoc draws one footprint location the way real traces produce them,
// with occasional out-of-encoding strays to exercise the SigOver fallback.
func randLoc(r *rand.Rand) isa.Loc {
	switch r.Intn(10) {
	case 0, 1, 2, 3:
		return isa.IReg(uint16(r.Intn(isa.SigIntWords*64 + 8)))
	case 4:
		return isa.FReg(uint16(r.Intn(66)))
	case 5:
		return isa.Loc{Kind: isa.LocICC}
	case 6:
		return isa.Loc{Kind: isa.LocCWP}
	case 7, 8:
		return isa.MemLoc(uint32(r.Intn(128)), uint8(1+r.Intn(8)))
	default:
		return isa.Loc{Kind: isa.LocRen, Idx: uint16(r.Intn(68)), Addr: uint32(r.Intn(5))}
	}
}

func randLocs(r *rand.Rand) []isa.Loc {
	locs := make([]isa.Loc, r.Intn(5))
	for i := range locs {
		locs[i] = randLoc(r)
	}
	return locs
}

// sigOverlap is the scheduler's composite overlap decision: the exact bits
// first, then the memory-interval compare when both sides carry LocMem,
// then the naive scan when a side overflowed the encoding.
func sigOverlap(a, b []isa.Loc) bool {
	var sa, sb isa.Sig
	sa.AddSet(a)
	sb.AddSet(b)
	if sa.Hit(&sb) {
		return true
	}
	if sa.Over(&sb) {
		return overlapAny(a, b)
	}
	if sa.MemBoth(&sb) {
		for _, l := range a {
			if l.Kind == isa.LocMem && memAnyOverlap(b, l) {
				return true
			}
		}
	}
	return false
}

// TestMaskOverlapMatchesNaive: the bitset overlap predicate is equivalent
// to the naive pairwise Loc scan on random footprints.
func TestMaskOverlapMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 200000; i++ {
		a, b := randLocs(r), randLocs(r)
		if got, want := sigOverlap(a, b), overlapAny(a, b); got != want {
			t.Fatalf("sig=%v naive=%v:\n a=%v\n b=%v", got, want, a, b)
		}
	}
}

// checkAggregates recomputes every element's cached signatures and
// counters from its installed slots and compares them with the
// incrementally maintained state.
func checkAggregates(t *testing.T, u *Scheduler, when string) {
	t.Helper()
	for ei, e := range u.elems {
		var rsig isa.Sig
		wsig := make([]isa.Sig, u.maxLat+1)
		var latMask, occMask uint64
		var occ, ctis, mems, stores, loads, memWrites int
		for i, s := range e.slots {
			if s == nil {
				continue
			}
			occ++
			occMask |= 1 << i
			var sr, sw isa.Sig
			sr.AddSet(s.reads)
			sw.AddSet(s.writes)
			if sr != e.sigR[i] || sw != e.sigW[i] {
				t.Fatalf("%s: elem %d slot %d: stale per-slot signature", when, ei, i)
			}
			lat := s.LatOr1()
			if int(e.slotLat[i]) != lat {
				t.Fatalf("%s: elem %d slot %d: slotLat %d != %d", when, ei, i, e.slotLat[i], lat)
			}
			rsig.Or(&sr)
			wsig[lat].Or(&sw)
			latMask |= 1 << lat
			memCopy := s.IsCopy && hasMemCopy(s)
			if s.IsCondOrIndirectBranch() {
				ctis++
			}
			if s.IsMem || memCopy {
				mems++
			}
			if (s.IsStore && !s.MemRenamed) || memCopy {
				stores++
			}
			if !s.IsCopy && s.IsMem && !s.IsStore {
				loads++
			}
			if s.IsMem || s.IsCopy {
				for _, w := range s.writes {
					if w.Kind == isa.LocMem {
						memWrites++
					}
				}
			}
		}
		if occ != e.occ || occMask != e.occMask {
			t.Fatalf("%s: elem %d: occupancy %d/%#x != cached %d/%#x",
				when, ei, occ, occMask, e.occ, e.occMask)
		}
		if ctis != e.ctis || mems != e.mems || stores != e.stores || loads != e.loads {
			t.Fatalf("%s: elem %d: counters (%d,%d,%d,%d) != cached (%d,%d,%d,%d)",
				when, ei, ctis, mems, stores, loads, e.ctis, e.mems, e.stores, e.loads)
		}
		if rsig != e.rsig {
			t.Fatalf("%s: elem %d: rsig aggregate stale", when, ei)
		}
		if latMask != e.latMask {
			t.Fatalf("%s: elem %d: latMask %#x != cached %#x", when, ei, latMask, e.latMask)
		}
		for lm := latMask; lm != 0; lm &= lm - 1 {
			l := bits.TrailingZeros64(lm)
			if wsig[l] != e.wsigLat[l] {
				t.Fatalf("%s: elem %d: wsigLat[%d] aggregate stale", when, ei, l)
			}
		}
		if memWrites != len(e.memW) {
			t.Fatalf("%s: elem %d: %d LocMem writes != %d side-table entries",
				when, ei, memWrites, len(e.memW))
		}
		for _, mw := range e.memW {
			s := e.slots[mw.slot]
			if s == nil {
				t.Fatalf("%s: elem %d: memW entry for empty slot %d", when, ei, mw.slot)
			}
			if int(mw.lat) != s.LatOr1() {
				t.Fatalf("%s: elem %d: memW lat %d != slot lat %d", when, ei, mw.lat, s.LatOr1())
			}
		}
	}
}

// TestElementAggregatesConsistent replays real traces and revalidates the
// incrementally maintained element aggregates against a from-scratch
// recomputation after every insertion (install, move-up and split paths
// all mutate them).
func TestElementAggregatesConsistent(t *testing.T) {
	for _, shape := range progen.Shapes() {
		t.Run(shape.String(), func(t *testing.T) {
			cfg := feedConfig()
			if shape == progen.ShapeMulticycle {
				cfg.LoadLatency = 2
				cfg.FPLatency = 3
				cfg.FPDivLatency = 8
			}
			events := recordTrace(t, shape, 2, 6_000)
			u, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for i := range events {
				ev := &events[i]
				if ev.flush {
					u.Flush(ev.c.Addr, ev.c.Seq)
					continue
				}
				if _, err := u.Insert(ev.c); err != nil {
					t.Fatal(err)
				}
				checkAggregates(t, u, "after insert")
			}
		})
	}
}

// TestDependencyChecksZeroAlloc: once pools and scratch buffers are warm,
// the dependency-check core of the insertion path (true, output, anti and
// copy-safety queries) performs no heap allocation.
func TestDependencyChecksZeroAlloc(t *testing.T) {
	events := recordTrace(t, progen.ShapeMixed, 1, 20_000)
	u, err := New(feedConfig())
	if err != nil {
		t.Fatal(err)
	}
	replay(t, u, events) // warm pools, arenas and scratch buffers

	// Repopulate the scheduling list and stop with it non-empty.
	for i := range events {
		ev := &events[i]
		if ev.flush {
			continue
		}
		if _, err := u.Insert(ev.c); err != nil {
			t.Fatal(err)
		}
		if u.Len() >= u.cfg.Height-1 {
			break
		}
	}
	if u.Empty() {
		t.Fatal("scheduling list empty after repopulation")
	}
	tail := u.Len() - 1
	e := u.elems[tail]
	slotIdx := bits.TrailingZeros64(e.occMask)
	if slotIdx >= u.cfg.Width {
		t.Fatal("tail element has no installed slot")
	}
	cand := e.slots[slotIdx]
	u.candR.Reset()
	u.candR.AddSet(cand.reads)
	u.candW.Reset()
	u.candW.AddSet(cand.writes)

	allocs := testing.AllocsPerRun(200, func() {
		u.trueDepBlocked(cand, tail)
		u.wawBlocked(cand, tail)
		u.wawCopyUnsafe(cand, tail)
		u.horizonOutputConflicts(cand, tail)
		u.antiConflicts(cand, e, slotIdx)
		u.memSerialized(cand, e)
		u.freeSlot(e, cand.Inst.Class())
	})
	if allocs != 0 {
		t.Fatalf("dependency-check steady state allocated %.1f times per run", allocs)
	}
}
