package sched

import (
	"math/bits"

	"dtsvliw/internal/isa"
)

// Allocation machinery of the Scheduler Unit hot path. The scheduler
// recycles element structs across block flushes (blocks take a compact
// copy of the slot grid, see flush), hands out Slot structs from chunked
// arenas, and stores footprint Loc slices and rename-pair lists in rolling
// arenas, so the steady-state insertion path performs no per-instruction
// heap allocation beyond amortised chunk refills.
//
// Every chunk the arenas ever allocate is additionally tracked in a slab
// list, so Reset can reclaim the whole working set in O(slabs) and a
// reused scheduler reaches a zero-allocation steady state across runs
// (the machine-pool reuse path, DESIGN.md §15).

const (
	slotChunkSize = 256  // Slots per arena chunk
	locChunkSize  = 4096 // footprint Locs per arena chunk
	pairChunkSize = 1024 // RenamePairs per arena chunk
)

// newSlot returns a zeroed Slot from the free list or the arena chunk.
func (u *Scheduler) newSlot() *Slot {
	if n := len(u.slotFree); n > 0 {
		s := u.slotFree[n-1]
		u.slotFree = u.slotFree[:n-1]
		return s
	}
	if len(u.slotChunk) == 0 {
		u.slotChunk = make([]Slot, slotChunkSize)
		u.slotSlabs = append(u.slotSlabs, u.slotChunk)
	}
	s := &u.slotChunk[0]
	u.slotChunk = u.slotChunk[1:]
	return s
}

// releaseSlot recycles a Slot that never escaped into a block (e.g. a
// candidate rebuilt after a flush started a fresh block). Its footprint
// and rename-pair slices are arena-backed, so they are simply dropped.
func (u *Scheduler) releaseSlot(s *Slot) {
	*s = Slot{}
	u.slotFree = append(u.slotFree, s)
}

// grabLocs copies a scratch footprint into the Loc arena and returns a
// capacity-clamped slice owned by the caller (one amortised allocation per
// locChunkSize locations instead of one per footprint).
func (u *Scheduler) grabLocs(src []isa.Loc) []isa.Loc {
	if len(src) == 0 {
		return nil
	}
	if cap(u.locArena)-len(u.locArena) < len(src) {
		u.locArena = nextSlab(&u.locSlabs, &u.locNext, len(src), locChunkSize)
	}
	start := len(u.locArena)
	u.locArena = append(u.locArena, src...)
	out := u.locArena[start:]
	return out[:len(out):len(out)]
}

// grabPairs is grabLocs for rename-pair lists (Renames, SrcRenames,
// Copies), which otherwise account for most steady-state allocations:
// every split appends to slices of slots that escape into blocks.
func (u *Scheduler) grabPairs(src []RenamePair) []RenamePair {
	if len(src) == 0 {
		return nil
	}
	if cap(u.pairArena)-len(u.pairArena) < len(src) {
		u.pairArena = nextSlab(&u.pairSlabs, &u.pairNext, len(src), pairChunkSize)
	}
	start := len(u.pairArena)
	u.pairArena = append(u.pairArena, src...)
	out := u.pairArena[start:]
	return out[:len(out):len(out)]
}

// nextSlab mounts the next recyclable slab with capacity ≥ min from the
// slab list, allocating (and registering) a new chunk when none fits. The
// mounted slab is swapped into position *next, so slabs [0, *next) are
// exactly the ones in use since the last Reset.
func nextSlab[T any](slabs *[][]T, next *int, min, chunk int) []T {
	for i := *next; i < len(*slabs); i++ {
		if cap((*slabs)[i]) >= min {
			(*slabs)[i], (*slabs)[*next] = (*slabs)[*next], (*slabs)[i]
			s := (*slabs)[*next][:0]
			*next++
			return s
		}
	}
	n := chunk
	if min > n {
		n = min
	}
	s := make([]T, 0, n)
	*slabs = append(*slabs, s)
	last := len(*slabs) - 1
	(*slabs)[*next], (*slabs)[last] = (*slabs)[last], (*slabs)[*next]
	*next++
	return s
}

// releaseElement resets an element and returns it to the pool. Its slot
// pointers have already been copied into the flushed block's backing
// array. The per-slot signature arrays need no reset: sigR/sigW entries
// are written before every slot install that reads them.
func (u *Scheduler) releaseElement(e *element) {
	for i := range e.slots {
		e.slots[i] = nil
	}
	e.branches = 0
	e.occ, e.ctis, e.mems, e.stores, e.loads = 0, 0, 0, 0, 0
	e.occMask = 0
	e.rsig.Reset()
	for lm := e.latMask; lm != 0; lm &= lm - 1 {
		e.wsigLat[bits.TrailingZeros64(lm)].Reset()
	}
	e.latMask = 0
	e.memW = e.memW[:0]
	u.elemPool = append(u.elemPool, e)
}

// takeBlock returns a Block whose LIs grid has n rows of Width slots,
// recycled from the block pool when possible. Pooled blocks carry a full
// Height×Width grid (one backing array), so any flush size fits.
func (u *Scheduler) takeBlock(n int) *Block {
	if k := len(u.blockPool); k > 0 {
		b := u.blockPool[k-1]
		u.blockPool = u.blockPool[:k-1]
		lis := b.LIs[:u.cfg.Height]
		*b = Block{}
		b.LIs = lis[:n]
		return b
	}
	w := u.cfg.Width
	backing := make([]*Slot, u.cfg.Height*w)
	lis := make([][]*Slot, u.cfg.Height)
	for i := range lis {
		lis[i] = backing[i*w : (i+1)*w : (i+1)*w]
	}
	return &Block{LIs: lis[:n]}
}

// Reset returns the scheduler to its post-New state while keeping every
// allocation it has accumulated: elements, slots, arena slabs and pooled
// blocks all become available for the next run. It reclaims storage
// unconditionally, so it must only be called once no block the scheduler
// ever flushed is still in use (the machine's reset path drains the VLIW
// Cache first); any Block or Slot obtained before Reset is invalid after
// it. Stats are cleared except for the block geometry.
func (u *Scheduler) Reset() {
	for _, e := range u.elems {
		u.releaseElement(e)
	}
	u.elems = u.elems[:0]
	u.blockTag, u.blockCWP, u.blockSeq, u.blockIns = 0, 0, 0, 0
	u.haveTag = false
	u.renUsed = [NumRenameClasses]uint16{}
	u.order = 0
	u.splits = 0
	u.currentCon = false
	u.renEpoch++ // invalidates every renTab binding in O(1)
	u.renLive = 0
	if len(u.renameMap) > 0 {
		clear(u.renameMap)
	}
	if len(u.conservative) > 0 {
		clear(u.conservative)
	}
	u.trace = u.trace[:0]
	u.candR.Reset()
	u.candW.Reset()
	// Reclaim the slot arena wholesale: every slab slot is zeroed and put
	// back on the free list (slot pointers inside recycled blocks are
	// overwritten before use — flush copies a full row per long
	// instruction).
	u.slotFree = u.slotFree[:0]
	u.slotChunk = nil
	for _, slab := range u.slotSlabs {
		clear(slab)
		for i := range slab {
			u.slotFree = append(u.slotFree, &slab[i])
		}
	}
	// Rewind the rolling arenas: slabs stay registered, the mount cursors
	// return to the first slab.
	u.locArena = nil
	u.locNext = 0
	u.pairArena = nil
	u.pairNext = 0
	u.Stats = Stats{Width: u.cfg.Width, Height: u.cfg.Height}
}

// RecycleBlock returns a block produced by this scheduler's Flush to the
// block pool, once the caller (the VLIW Cache, via the machine's reset
// path) is done with it. Blocks whose grid no longer matches the full
// Height×Width pooled layout — hand-built test blocks, or blocks a
// repacking strategy rewrote with fresh rows — are ignored and left to
// the garbage collector.
func (u *Scheduler) RecycleBlock(b *Block) {
	if b == nil || cap(b.LIs) < u.cfg.Height {
		return
	}
	lis := b.LIs[:u.cfg.Height]
	for _, row := range lis {
		if len(row) != u.cfg.Width {
			return
		}
	}
	u.blockPool = append(u.blockPool, b)
}
