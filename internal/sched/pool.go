package sched

import (
	"math/bits"

	"dtsvliw/internal/isa"
)

// Allocation machinery of the Scheduler Unit hot path. The scheduler
// recycles element structs across block flushes (blocks take a compact
// copy of the slot grid, see flush), hands out Slot structs from chunked
// arenas, and stores footprint Loc slices and rename-pair lists in rolling
// arenas, so the steady-state insertion path performs no per-instruction
// heap allocation beyond amortised chunk refills.

const (
	slotChunkSize = 256  // Slots per arena chunk
	locChunkSize  = 4096 // footprint Locs per arena chunk
	pairChunkSize = 1024 // RenamePairs per arena chunk
)

// newSlot returns a zeroed Slot from the free list or the arena chunk.
func (u *Scheduler) newSlot() *Slot {
	if n := len(u.slotFree); n > 0 {
		s := u.slotFree[n-1]
		u.slotFree = u.slotFree[:n-1]
		return s
	}
	if len(u.slotChunk) == 0 {
		u.slotChunk = make([]Slot, slotChunkSize)
	}
	s := &u.slotChunk[0]
	u.slotChunk = u.slotChunk[1:]
	return s
}

// releaseSlot recycles a Slot that never escaped into a block (e.g. a
// candidate rebuilt after a flush started a fresh block). Its footprint
// and rename-pair slices are arena-backed, so they are simply dropped.
func (u *Scheduler) releaseSlot(s *Slot) {
	*s = Slot{}
	u.slotFree = append(u.slotFree, s)
}

// grabLocs copies a scratch footprint into the Loc arena and returns a
// capacity-clamped slice owned by the caller (one amortised allocation per
// locChunkSize locations instead of one per footprint).
func (u *Scheduler) grabLocs(src []isa.Loc) []isa.Loc {
	if len(src) == 0 {
		return nil
	}
	if cap(u.locArena)-len(u.locArena) < len(src) {
		n := locChunkSize
		if len(src) > n {
			n = len(src)
		}
		u.locArena = make([]isa.Loc, 0, n)
	}
	start := len(u.locArena)
	u.locArena = append(u.locArena, src...)
	out := u.locArena[start:]
	return out[:len(out):len(out)]
}

// grabPairs is grabLocs for rename-pair lists (Renames, SrcRenames,
// Copies), which otherwise account for most steady-state allocations:
// every split appends to slices of slots that escape into blocks.
func (u *Scheduler) grabPairs(src []RenamePair) []RenamePair {
	if len(src) == 0 {
		return nil
	}
	if cap(u.pairArena)-len(u.pairArena) < len(src) {
		n := pairChunkSize
		if len(src) > n {
			n = len(src)
		}
		u.pairArena = make([]RenamePair, 0, n)
	}
	start := len(u.pairArena)
	u.pairArena = append(u.pairArena, src...)
	out := u.pairArena[start:]
	return out[:len(out):len(out)]
}

// releaseElement resets an element and returns it to the pool. Its slot
// pointers have already been copied into the flushed block's backing
// array. The per-slot signature arrays need no reset: sigR/sigW entries
// are written before every slot install that reads them.
func (u *Scheduler) releaseElement(e *element) {
	for i := range e.slots {
		e.slots[i] = nil
	}
	e.branches = 0
	e.occ, e.ctis, e.mems, e.stores, e.loads = 0, 0, 0, 0, 0
	e.occMask = 0
	e.rsig.Reset()
	for lm := e.latMask; lm != 0; lm &= lm - 1 {
		e.wsigLat[bits.TrailingZeros64(lm)].Reset()
	}
	e.latMask = 0
	e.memW = e.memW[:0]
	u.elemPool = append(u.elemPool, e)
}
