package oracle

import (
	"errors"
	"strings"
	"testing"

	"dtsvliw/internal/core"
	"dtsvliw/internal/progen"
)

// TestRunDiffClean: hand-written programs run identically on the DTSVLIW
// machine and the reference interpreter.
func TestRunDiffClean(t *testing.T) {
	progs := []struct {
		name, src string
		exit      uint32
		out       string
	}{
		{"sum10", `
	mov 0, %l0
	mov 10, %l1
loop:	add %l0, %l1, %l0
	subcc %l1, 1, %l1
	bne loop
	mov %l0, %o0
	ta 0
`, 55, ""},
		{"putchar", `
	mov 72, %o0
	ta 1
	mov 105, %o0
	ta 1
	mov 0, %o0
	ta 0
`, 0, "Hi"},
		{"memory", `
	set 0x7e100, %l0
	mov 7, %l1
	st %l1, [%l0]
	ld [%l0], %l2
	add %l2, %l2, %o0
	ta 0
`, 14, ""},
	}
	for _, p := range progs {
		t.Run(p.name, func(t *testing.T) {
			res, err := RunDiff(p.src, core.IdealConfig(4, 4))
			if err != nil {
				t.Fatalf("RunDiff: %v", err)
			}
			if res.ExitCode != p.exit {
				t.Fatalf("exit = %d, want %d", res.ExitCode, p.exit)
			}
			if string(res.Output) != p.out {
				t.Fatalf("output = %q, want %q", res.Output, p.out)
			}
			if res.Instret == 0 || res.Cycles == 0 {
				t.Fatalf("empty run: %+v", res)
			}
		})
	}
}

// TestRunDiffGenerated: a small conformance sweep across every shape and
// every default configuration finds zero divergences.
func TestRunDiffGenerated(t *testing.T) {
	n := 72
	if testing.Short() {
		n = 16
	}
	rep := Sweep(SweepOptions{N: n, Seed: 400, MaxFail: 4})
	for _, f := range rep.Failures {
		t.Errorf("unexpected failure:\n%s", f.Render())
	}
	if rep.Runs != n || rep.Instret == 0 {
		t.Fatalf("sweep ran %d/%d programs, %d instructions", rep.Runs, n, rep.Instret)
	}
}

// TestProgramErrorClassification: a program that faults under sequential
// execution is reported as a ProgramError, not a Divergence.
func TestProgramErrorClassification(t *testing.T) {
	_, err := RunDiff(`
	mov 1, %l0
	ld [%l0], %o0
	ta 0
`, core.IdealConfig(4, 4))
	var pe *ProgramError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v, want ProgramError", err)
	}
	var d *Divergence
	if errors.As(err, &d) {
		t.Fatalf("misaligned load misclassified as divergence: %v", d)
	}

	if _, err := RunDiff("not assembly at all", core.IdealConfig(4, 4)); !errors.As(err, &pe) || pe.Stage != "assemble" {
		t.Fatalf("got %v, want assemble-stage ProgramError", err)
	}
}

// TestShrinkDDMin: the line-level delta debugger reduces to exactly the
// interesting lines.
func TestShrinkDDMin(t *testing.T) {
	var lines []string
	for i := 0; i < 40; i++ {
		lines = append(lines, "filler")
	}
	lines[7] = "keep-a"
	lines[23] = "keep-b"
	src := strings.Join(lines, "\n")
	check := func(cand string) bool {
		return strings.Contains(cand, "keep-a") && strings.Contains(cand, "keep-b")
	}
	got := Shrink(src, check, 0)
	if got != "keep-a\nkeep-b" {
		t.Fatalf("shrunk to %q", got)
	}
}

// TestRefContext: the reference keeps a bounded disassembled window with
// the latest instruction marked.
func TestRefContext(t *testing.T) {
	ref, err := NewRef(`
	mov 0, %l0
	mov 40, %l1
loop:	add %l0, 1, %l0
	subcc %l1, 1, %l1
	bne loop
	mov %l0, %o0
	ta 0
`, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if err := ref.Step(); err != nil {
			t.Fatal(err)
		}
	}
	ctx := ref.Context()
	if n := len(strings.Split(ctx, "\n")); n != contextWindow {
		t.Fatalf("context window has %d lines, want %d:\n%s", n, contextWindow, ctx)
	}
	if !strings.Contains(ctx, "=>") {
		t.Fatalf("context has no current-instruction marker:\n%s", ctx)
	}
	if !strings.Contains(ctx, "add") || !strings.Contains(ctx, "subcc") {
		t.Fatalf("context not disassembled:\n%s", ctx)
	}
}

// faultyConfig returns an 8x8 ideal machine with the deliberate scheduler
// bug enabled: splits silently drop their copy instruction.
func faultyConfig() core.Config {
	cfg := core.IdealConfig(8, 8)
	cfg.FaultDropCopy = true
	return cfg
}

// findInjectedFault scans seeds until the faulty machine diverges on a
// generated program, and returns the program and seed.
func findInjectedFault(t *testing.T, shape progen.Shape, maxSeeds int) (string, int64, *Divergence) {
	t.Helper()
	for seed := int64(0); seed < int64(maxSeeds); seed++ {
		src := progen.Generate(progen.ShapeParams(shape, seed))
		_, err := RunDiff(src, faultyConfig())
		var d *Divergence
		if errors.As(err, &d) {
			return src, seed, d
		}
		if err != nil {
			t.Fatalf("seed %d: non-divergence failure on faulty machine: %v", seed, err)
		}
	}
	t.Fatalf("no seed in [0,%d) tripped the injected scheduler fault", maxSeeds)
	return "", 0, nil
}

// TestMetaInjectedFault: the meta-test of the oracle itself. A deliberate
// scheduler bug (splits lose their copy instruction, so renamed values
// never reach the architectural registers) must be caught by the
// differential runner, shrink to a smaller reproducer, and the reproducer
// must be clean on the unbroken machine.
func TestMetaInjectedFault(t *testing.T) {
	src, seed, div := findInjectedFault(t, progen.ShapeMixed, 40)
	t.Logf("injected fault caught at seed %d: %s (%s)", seed, div.Diff, div.Where)

	small, smallDiv := ShrinkDivergence(src, faultyConfig(), 200)
	if smallDiv == nil {
		t.Fatal("shrunk reproducer no longer diverges")
	}
	if countLines(small) >= countLines(src) {
		t.Fatalf("shrinking did not reduce: %d -> %d lines", countLines(src), countLines(small))
	}
	t.Logf("shrunk %d -> %d lines; divergence: %s", countLines(src), countLines(small), smallDiv.Diff)

	// The reproducer must still trip the faulty machine (replayability)...
	if _, err := RunDiff(small, faultyConfig()); err == nil {
		t.Fatal("shrunk reproducer passes on the faulty machine")
	}
	// ...and must be clean on the correct machine: the oracle flags the
	// injected bug, not the program.
	if _, err := RunDiff(small, core.IdealConfig(8, 8)); err != nil {
		t.Fatalf("shrunk reproducer fails on the correct machine: %v", err)
	}
}

// TestMetaFaultViaSweep: the conformance driver end-to-end against the
// faulty machine — it must report a shrunk, replayable failure.
func TestMetaFaultViaSweep(t *testing.T) {
	rep := Sweep(SweepOptions{
		N: 40, Seed: 0,
		Shapes:  []progen.Shape{progen.ShapeMixed},
		Configs: []NamedConfig{{Name: "faulty", Cfg: faultyConfig()}},
		MaxFail: 1,
	})
	if len(rep.Failures) == 0 {
		t.Fatal("sweep over the faulty machine reported no failures")
	}
	f := rep.Failures[0]
	if f.Div == nil {
		t.Fatalf("failure has no divergence: %+v", f.Err)
	}
	if f.Lines >= f.OrigLines {
		t.Fatalf("failure not shrunk: %d -> %d lines", f.OrigLines, f.Lines)
	}
	r := f.Render()
	for _, want := range []string{"seed=", "shape=mixed", "config=faulty", "reproducer"} {
		if !strings.Contains(r, want) {
			t.Fatalf("rendered failure missing %q:\n%s", want, r)
		}
	}
	// Replayability: the rendered source between the markers still fails.
	if _, err := RunDiff(f.Source, faultyConfig()); err == nil {
		t.Fatal("reported reproducer does not reproduce")
	}
}
