package oracle

import (
	"fmt"
	"strings"

	"dtsvliw/internal/arch"
	"dtsvliw/internal/isa"
)

// contextWindow is the number of recently retired reference instructions
// kept for divergence reports.
const contextWindow = 16

// Ref is the oracle's reference interpreter: a strictly sequential SPARC
// V7 machine over internal/arch state with no scheduling, no VLIW Cache
// and no speculation. It remembers the last few retired instructions so a
// divergence report can show the disassembled neighbourhood of the fault.
type Ref struct {
	St *arch.State

	ring [contextWindow]refStep
	n    uint64 // total retired since construction
}

// refStep keeps the decoded instruction, not its disassembly: rendering
// the text is deferred to Context, so the per-step cost on the hot path
// is a struct copy instead of a string format.
type refStep struct {
	pc uint32
	in isa.Inst
}

// NewRef builds a reference interpreter for source with nwin register
// windows (the standard layout of BuildState).
func NewRef(source string, nwin int) (*Ref, error) {
	st, err := BuildState(source, nwin)
	if err != nil {
		return nil, err
	}
	return RefOver(st), nil
}

// RefOver wraps an already prepared state (program loaded, PC and stack
// initialised) as a reference interpreter, enabling store journaling.
func RefOver(st *arch.State) *Ref {
	st.LogStores = true
	return &Ref{St: st}
}

// Rebind points the reference at a freshly prepared state and clears the
// context ring, so one Ref can serve many runs (the pooled sweep path).
func (r *Ref) Rebind(st *arch.State) {
	st.LogStores = true
	r.St = st
	r.ring = [contextWindow]refStep{}
	r.n = 0
}

// Step retires exactly one instruction sequentially and records it in the
// context ring. Stepping a halted machine is an error: the oracle calls
// Step only when the DTSVLIW claims to have committed an instruction, so
// "reference already halted" means the machines disagree about program
// length.
func (r *Ref) Step() error {
	if r.St.Halted {
		return fmt.Errorf("reference halted after %d instructions but the machine kept committing", r.n)
	}
	pc := r.St.PC
	in, _, err := r.St.StepOutcome()
	if err != nil {
		return err
	}
	r.ring[r.n%contextWindow] = refStep{pc: pc, in: in}
	r.n++
	return nil
}

// Retired returns the number of instructions the reference has retired.
func (r *Ref) Retired() uint64 { return r.n }

// Context renders the disassembled window of recently retired reference
// instructions, most recent last. The final line is the instruction whose
// commit diverged (or the last one before the machines disagreed).
func (r *Ref) Context() string {
	if r.n == 0 {
		return "  (no instructions retired yet)"
	}
	var b strings.Builder
	count := r.n
	if count > contextWindow {
		count = contextWindow
	}
	for i := r.n - count; i < r.n; i++ {
		s := r.ring[i%contextWindow]
		marker := "  "
		if i == r.n-1 {
			marker = "=>"
		}
		fmt.Fprintf(&b, "%s [%6d] %#08x  %s\n", marker, i+1, s.pc, s.in.Disasm(s.pc))
	}
	return strings.TrimRight(b.String(), "\n")
}
