package oracle

import (
	"fmt"

	"dtsvliw/internal/metrics"
)

// sweepMetrics holds the registry instruments a conformance sweep
// publishes (DESIGN.md §17): aggregate progress counters updated by the
// in-order merger (deterministic final values), plus worker-occupancy
// instrumentation updated by the workers themselves (scheduling-
// dependent by nature — throughput observability, not part of the
// deterministic report).
type sweepMetrics struct {
	reg *metrics.Registry

	// Merger-owned: updated in consume, strictly in case order, so their
	// final values reconcile exactly with the Report.
	programs      *metrics.Counter
	divergences   *metrics.Counter
	instret       *metrics.Counter
	cycles        *metrics.Counter
	programCycles *metrics.Histogram

	// Run-shape gauges.
	active  *metrics.Gauge
	cases   *metrics.Gauge
	workers *metrics.Gauge

	// Worker-owned: occupancy and attribution. Which worker runs which
	// case depends on goroutine scheduling, so per-worker values vary run
	// to run; their sums do not (every case runs exactly once on a clean
	// sweep).
	busy           *metrics.Gauge
	workerPrograms *metrics.CounterVec
	poolHits       *metrics.Counter
	poolMisses     *metrics.Counter
}

func newSweepMetrics(reg *metrics.Registry) *sweepMetrics {
	return &sweepMetrics{
		reg:         reg,
		programs:    reg.Counter("dtsvliw_sweep_programs_total", "sweep cases merged into the report"),
		divergences: reg.Counter("dtsvliw_sweep_divergences_total", "sweep cases that failed (divergence or harness error)"),
		instret:     reg.Counter("dtsvliw_sweep_instret_total", "sequential instructions checked by successful cases"),
		cycles:      reg.Counter("dtsvliw_sweep_cycles_total", "DTSVLIW cycles simulated by successful cases"),
		programCycles: reg.Histogram("dtsvliw_sweep_program_cycles",
			"DTSVLIW cycles per successful sweep case",
			[]uint64{1_000, 10_000, 100_000, 1_000_000, 10_000_000}),
		active:         reg.Gauge("dtsvliw_sweeps_active", "sweeps currently running"),
		cases:          reg.Gauge("dtsvliw_sweep_cases", "case count of the most recently started sweep"),
		workers:        reg.Gauge("dtsvliw_sweep_workers", "worker count of the most recently started sweep"),
		busy:           reg.Gauge("dtsvliw_sweep_busy_workers", "workers currently executing a case"),
		workerPrograms: reg.CounterVec("dtsvliw_sweep_worker_programs_total", "cases completed per worker", "worker"),
		poolHits:       reg.Counter("dtsvliw_sweep_pool_hits_total", "machine-pool gets served by a recycled context"),
		poolMisses:     reg.Counter("dtsvliw_sweep_pool_misses_total", "machine-pool gets that built a fresh context"),
	}
}

// workerLabel formats a worker index as a fixed-width label so series
// sort numerically.
func workerLabel(w int) string { return fmt.Sprintf("%02d", w) }
