// Package oracle is the differential co-simulation oracle of the
// reproduction: an independent correctness backstop that checks the
// paper's central equivalence claim — that the DTSVLIW machine (Primary
// Processor + Scheduler Unit + VLIW Cache + VLIW Engine, with splitting,
// renaming, branch-tag speculation and aliasing recovery all enabled) is
// observationally identical to strictly sequential SPARC V7 execution.
//
// It has three layers:
//
//   - a reference interpreter (Ref): a minimal pure sequential interpreter
//     over internal/arch state with no scheduling, no caches and no
//     speculation, which keeps a disassembled window of recent
//     instructions for divergence reports;
//
//   - a lock-step differential runner (RunDiff): it executes one program
//     on the full DTSVLIW machine and, through the machine's
//     CheckpointHook, advances the reference interpreter at every commit
//     checkpoint (per Primary instruction, per block boundary, per trace
//     exit, per rollback), diffing registers, condition codes, PC,
//     journaled memory and trap output, plus a full final-state
//     comparison at halt — entirely independent of the machine's own
//     TestMode machinery;
//
//   - a property-based conformance driver (Sweep): it generates seeded
//     random programs in every internal/progen shape (mixed,
//     branch-heavy, load/store-aliasing, multicycle-op), runs each
//     through the differential runner on a rotating set of machine
//     configurations, and shrinks any failing program to a minimal
//     reproducer printed as re-runnable assembly plus its seed.
//
// The cmd/dtsvliw-oracle command exposes the sweep for local runs and CI.
package oracle

import (
	"fmt"

	"dtsvliw/internal/arch"
	"dtsvliw/internal/asm"
	"dtsvliw/internal/mem"
)

// Memory layout shared by both machines of a differential run (the same
// layout the simulator facade and the core tests use).
const (
	stackBase  = 0x7E000
	stackSize  = 0x2000
	initialSP  = 0x7FF00
	defaultWin = 8
)

// BuildState assembles source and loads it into a fresh architectural
// state with the standard stack mapping.
func BuildState(source string, nwin int) (*arch.State, error) {
	if nwin <= 0 {
		nwin = defaultWin
	}
	p, err := asm.Assemble(source)
	if err != nil {
		return nil, err
	}
	st := arch.NewState(nwin, mem.NewMemory())
	loadProgram(st, p)
	return st, nil
}

// loadProgram installs an assembled program into st with the standard
// memory layout: sections, stack mapping, entry PC, %sp and the decoded-
// instruction cache over the text range. The state may be fresh or reset;
// either way it afterwards matches what BuildState produces.
func loadProgram(st *arch.State, p *asm.Program) {
	p.Load(st.Mem)
	st.Mem.Map(stackBase, stackSize)
	st.PC = p.Entry
	st.SetReg(14, initialSP) // %sp
	st.SetTextRange(p.TextBase, p.TextSize)
}

// ProgramError reports that the program itself is faulty (it does not
// assemble, faults sequentially, or exceeds its budget on the reference) —
// as opposed to a machine divergence.
type ProgramError struct {
	Stage string // "assemble", "reference", "machine"
	Err   error
}

func (e *ProgramError) Error() string {
	return fmt.Sprintf("oracle: %s: %v", e.Stage, e.Err)
}

func (e *ProgramError) Unwrap() error { return e.Err }
