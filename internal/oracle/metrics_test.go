package oracle

import (
	"bytes"
	"sync"
	"testing"

	"dtsvliw/internal/metrics"
)

// TestSweepMetricsReconcile: at quiescence the sweep's registry counters
// reconcile exactly with the final Report — including across layers: on a
// clean machine-vs-reference sweep every case runs exactly one machine,
// so the core publisher's cycle counter equals the sweep's.
func TestSweepMetricsReconcile(t *testing.T) {
	reg := metrics.NewRegistry()
	rep := Sweep(SweepOptions{N: 12, Seed: 7, Workers: 4, Metrics: reg})
	if len(rep.Failures) != 0 {
		t.Fatalf("expected a clean sweep, got %d failures", len(rep.Failures))
	}
	snap := reg.Snapshot()

	get := func(name string) uint64 {
		t.Helper()
		v, ok := snap.Value(name, "")
		if !ok {
			t.Fatalf("%s: not in snapshot", name)
		}
		return uint64(v)
	}
	if got := get("dtsvliw_sweep_programs_total"); got != uint64(rep.Runs) {
		t.Errorf("programs = %d, want %d", got, rep.Runs)
	}
	if got := get("dtsvliw_sweep_divergences_total"); got != 0 {
		t.Errorf("divergences = %d, want 0", got)
	}
	if got := get("dtsvliw_sweep_instret_total"); got != rep.Instret {
		t.Errorf("instret = %d, want %d", got, rep.Instret)
	}
	if got := get("dtsvliw_sweep_cycles_total"); got != rep.Cycles {
		t.Errorf("cycles = %d, want %d", got, rep.Cycles)
	}

	// Cross-layer: the machines the sweep ran published into the same
	// registry, and each successful case simulated exactly one machine to
	// completion, so the aggregates agree between layers.
	if mc := get("dtsvliw_machine_cycles_total"); mc != rep.Cycles {
		t.Errorf("machine cycles = %d, sweep cycles = %d: layers disagree", mc, rep.Cycles)
	}
	if mi := get("dtsvliw_machine_instrs_total"); mi != rep.Instret {
		t.Errorf("machine instrs = %d, sweep instret = %d: layers disagree", mi, rep.Instret)
	}

	// Worker attribution is scheduling-dependent per series, but every
	// case ran exactly once, so the series sum to the program counter.
	var workerSum int64
	for _, f := range snap.Families {
		if f.Name == "dtsvliw_sweep_worker_programs_total" {
			for _, s := range f.Series {
				workerSum += s.Value
			}
		}
	}
	if workerSum != int64(rep.Runs) {
		t.Errorf("worker programs sum = %d, want %d", workerSum, rep.Runs)
	}

	// Occupancy gauges have drained.
	for _, g := range []string{"dtsvliw_sweeps_active", "dtsvliw_sweep_busy_workers"} {
		if v, _ := snap.Value(g, ""); v != 0 {
			t.Errorf("%s = %d after sweep, want 0", g, v)
		}
	}
}

// TestSweepMetricsDivergenceCount: injected faults surface in the
// divergence counter exactly as in the report.
func TestSweepMetricsDivergenceCount(t *testing.T) {
	reg := metrics.NewRegistry()
	faulty := DefaultConfigs()[:1]
	faulty[0].Cfg.FaultDropCopy = true
	rep := Sweep(SweepOptions{N: 6, Seed: 400, Configs: faulty, MaxFail: 4,
		ShrinkEvals: 40, Workers: 1, Metrics: reg})
	if len(rep.Failures) == 0 {
		t.Skip("fault injection produced no divergence at this seed")
	}
	snap := reg.Snapshot()
	if v, _ := snap.Value("dtsvliw_sweep_divergences_total", ""); v != int64(len(rep.Failures)) {
		t.Errorf("divergences = %d, want %d", v, len(rep.Failures))
	}
}

// TestSweepMetricsSerialDeterminism: two identical serial sweeps into
// fresh registries dump byte-identically — every series, including pool
// and worker attribution, is deterministic at one worker.
func TestSweepMetricsSerialDeterminism(t *testing.T) {
	var dumps [2][]byte
	for i := range dumps {
		reg := metrics.NewRegistry()
		Sweep(SweepOptions{N: 8, Seed: 7, Workers: 1, Metrics: reg})
		var b bytes.Buffer
		if err := reg.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		dumps[i] = b.Bytes()
	}
	if !bytes.Equal(dumps[0], dumps[1]) {
		t.Fatal("identical serial sweeps produced different metric dumps")
	}
}

// TestSweepMetricsConcurrentScrape scrapes the registry continuously
// while a parallel sweep is publishing into it — the -race guard for the
// live-introspection path. Every intermediate dump must already be valid
// Prometheus text.
func TestSweepMetricsConcurrentScrape(t *testing.T) {
	reg := metrics.NewRegistry()
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			var b bytes.Buffer
			if err := reg.WritePrometheus(&b); err != nil {
				t.Errorf("scrape: %v", err)
				return
			}
			if err := metrics.LintText(&b); err != nil {
				t.Errorf("mid-sweep dump invalid: %v", err)
				return
			}
		}
	}()
	rep := Sweep(SweepOptions{N: 10, Seed: 7, Workers: 4, Metrics: reg})
	close(done)
	wg.Wait()
	if v, _ := reg.Snapshot().Value("dtsvliw_sweep_programs_total", ""); v != int64(rep.Runs) {
		t.Errorf("final programs = %d, want %d", v, rep.Runs)
	}
}
