package oracle

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"dtsvliw/internal/arch"
	"dtsvliw/internal/core"
	"dtsvliw/internal/progen"
	"dtsvliw/internal/sched"
	"dtsvliw/internal/workloads"
)

var updateGolden = flag.Bool("update", false, "regenerate testdata/sched_golden.json from the current scheduler")

// goldenPath holds the recorded pre-refactor fingerprints: one digest per
// (program, configuration) run, hashing every block the scheduler saved.
const goldenPath = "testdata/sched_golden.json"

// goldenConfigs are the machine configurations the fingerprint corpus
// runs under. They pin the default strategy: the fingerprints were
// recorded from the pre-Strategy FCFS scheduler, so any refactor of the
// default path must reproduce these blocks byte for byte.
func goldenConfigs() []NamedConfig {
	var out []NamedConfig
	for _, name := range []string{"ideal-8x8", "ideal-4x4", "feasible", "multicycle", "nofwd"} {
		nc, ok := ConfigByName(name)
		if !ok {
			panic("golden config missing: " + name)
		}
		out = append(out, nc)
	}
	return out
}

// hashBlocks builds the machine for cfg over the given assembly source
// (or workload), runs it, and hashes every saved block's canonical
// rendering — identity, latency, placement metadata, rename linkage and
// the dependency footprints: everything a strategy could plausibly
// disturb — in save order.
func hashBlocks(t *testing.T, cfg core.Config, source string, w *workloads.Workload, maxInstrs uint64) string {
	t.Helper()
	cfg.MaxInstrs = maxInstrs
	if cfg.MaxCycles == 0 || cfg.MaxCycles > 50_000_000 {
		cfg.MaxCycles = 50_000_000
	}
	var st *arch.State
	var err error
	if w != nil {
		st, err = w.NewState(cfg.NWin)
	} else {
		st, err = BuildState(source, cfg.NWin)
	}
	if err != nil {
		t.Fatalf("state: %v", err)
	}
	m, err := core.NewMachine(cfg, st)
	if err != nil {
		t.Fatalf("machine: %v", err)
	}
	h := sha256.New()
	m.BlockHook = func(b *sched.Block) {
		fmt.Fprintf(h, "block tag=%#x cwp=%d lis=%d nba=%v valid=%d ren=%v splits=%d span=[%d,%d) con=%v\n",
			b.Tag, b.EntryCWP, b.NumLIs, b.NBA, b.ValidOps, b.Renames, b.Splits,
			b.FirstSeq, b.EndSeq, b.Conservative)
		for li, row := range b.LIs {
			for col, s := range row {
				if s == nil {
					continue
				}
				fmt.Fprintf(h, "li=%d col=%d inst=%+v addr=%#x seq=%d lat=%d tag=%d", li, col, s.Inst, s.Addr, s.Seq, s.Lat, s.Tag)
				fmt.Fprintf(h, " copy=%v taken=%v target=%#x mem=%v store=%v cross=%v memren=%v",
					s.IsCopy, s.BrTaken, s.BrTarget, s.IsMem, s.IsStore, s.Cross, s.MemRenamed)
				fmt.Fprintf(h, " ea=%#x sz=%d ord=%d cwp=%d", s.MemAddr, s.MemSize, s.Order, s.CWP)
				fmt.Fprintf(h, " ren=%v srcren=%v copies=%v", s.Renames, s.SrcRenames, s.Copies)
				fmt.Fprintf(h, " r=%v w=%v\n", s.Reads(), s.Writes())
			}
		}
	}
	if err := m.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// TestGoldenFCFSBlocks proves the Strategy refactor left the default FCFS
// scheduler byte-identical: every block flushed across the golden corpus
// (progen programs over all shapes, plus capped workload prefixes) must
// hash to the digest recorded from the pre-refactor scheduler. Run with
// -update to re-record (only legitimate when the schedule is
// intentionally changed — never to paper over an accidental divergence).
func TestGoldenFCFSBlocks(t *testing.T) {
	if testing.Short() {
		t.Skip("golden corpus runs full machine simulations")
	}
	got := map[string]string{}

	// Generated programs: every shape, a spread of seeds, every golden
	// configuration.
	seeds := []int64{1, 2, 3, 5, 17, 101}
	for _, nc := range goldenConfigs() {
		for _, shape := range progen.Shapes() {
			for _, seed := range seeds {
				src := progen.Generate(progen.ShapeParams(shape, seed))
				key := fmt.Sprintf("progen/%s/%d/%s", shape, seed, nc.Name)
				got[key] = hashBlocks(t, nc.Cfg, src, nil, 0)
			}
		}
	}
	// Workload prefixes: the synthetic SPEC-alikes under the two main
	// machines, capped so the corpus stays fast.
	for _, wname := range []string{"compress", "xlisp"} {
		w, ok := workloads.ByName(wname)
		if !ok {
			t.Fatalf("workload %s missing", wname)
		}
		for _, cname := range []string{"ideal-8x8", "feasible"} {
			nc, _ := ConfigByName(cname)
			key := fmt.Sprintf("workload/%s/%s", wname, cname)
			got[key] = hashBlocks(t, nc.Cfg, "", w, 60_000)
		}
	}

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		keys := make([]string, 0, len(got))
		for k := range got { //determinism:allow sorted below
			keys = append(keys, k)
		}
		sort.Strings(keys)
		ordered := make(map[string]string, len(got))
		for _, k := range keys {
			ordered[k] = got[k]
		}
		data, err := json.MarshalIndent(ordered, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("recorded %d fingerprints to %s", len(got), goldenPath)
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("golden fingerprints missing (run with -update to record): %v", err)
	}
	want := map[string]string{}
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Errorf("corpus size changed: golden has %d runs, corpus produced %d", len(want), len(got))
	}
	keys := make([]string, 0, len(got))
	for k := range got { //determinism:allow sorted below
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if want[k] == "" {
			t.Errorf("%s: no recorded fingerprint (run -update after an intentional change)", k)
			continue
		}
		if got[k] != want[k] {
			t.Errorf("%s: block stream diverged from the pre-refactor scheduler\n  got  %s\n  want %s", k, got[k], want[k])
		}
	}
}
