package oracle

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"

	"dtsvliw/internal/core"
	"dtsvliw/internal/metrics"
	"dtsvliw/internal/progcheck"
	"dtsvliw/internal/progen"
	"dtsvliw/internal/vliw"
)

// shrinkCycles is the preferred (tight) cycle budget for shrink
// candidates, so reduced programs that spin forever are rejected quickly.
// If the original failure needs longer to surface, shrinking falls back
// to the full differential budget.
const shrinkCycles = 1_000_000

// shrinkRefInstrs bounds the sequential well-formedness run of each
// shrink candidate.
const shrinkRefInstrs = 5_000_000

// NamedConfig pairs a machine configuration with the name used to select
// it from the CLI and to label failures.
type NamedConfig struct {
	Name string
	Cfg  core.Config
}

// DefaultConfigs returns the machine configurations the conformance sweep
// rotates through: the paper's ideal geometries, the feasible machine,
// and one variant per orthogonal mechanism (multicycle latencies, the
// §3.11 data-store-list scheme, next-long-instruction prediction, the
// no-source-forwarding ablation, the interpreted engine, and unchained
// block dispatch).
func DefaultConfigs() []NamedConfig {
	multi := core.IdealConfig(8, 8)
	multi.LoadLatency, multi.FPLatency, multi.FPDivLatency = 2, 2, 8

	storelist := core.IdealConfig(8, 8)
	storelist.StoreScheme = vliw.SchemeStoreList

	exitpred := core.IdealConfig(8, 8)
	exitpred.ExitPrediction = true

	nofwd := core.IdealConfig(8, 8)
	nofwd.NoSourceForwarding = true

	interp := core.IdealConfig(8, 8)
	interp.InterpretedEngine = true

	nochain := core.IdealConfig(8, 8)
	nochain.NoChain = true

	return []NamedConfig{
		{"ideal-4x4", core.IdealConfig(4, 4)},
		{"ideal-8x8", core.IdealConfig(8, 8)},
		{"ideal-2x12", core.IdealConfig(2, 12)},
		{"ideal-16x4", core.IdealConfig(16, 4)},
		{"feasible", core.FeasibleConfig()},
		{"multicycle", multi},
		{"storelist", storelist},
		{"exitpred", exitpred},
		{"nofwd", nofwd},
		{"interpreted", interp},
		{"nochain", nochain},
	}
}

// StrategyConfigs returns the machine configurations exercising the
// non-default scheduling strategies (DESIGN.md §14): the optimal
// repacker across the geometries the strategy-conformance suite proves
// end-to-end (including multicycle latencies and the feasible machine's
// heterogeneous functional units, the two hardest constraint mixes) and
// the degenerate one-instruction-per-block reference.
func StrategyConfigs() []NamedConfig {
	opt := func(cfg core.Config) core.Config {
		cfg.SchedStrategy = "optimal"
		return cfg
	}
	multi := core.IdealConfig(8, 8)
	multi.LoadLatency, multi.FPLatency, multi.FPDivLatency = 2, 2, 8

	oneper := core.IdealConfig(8, 8)
	oneper.SchedStrategy = "one-per-block"

	return []NamedConfig{
		{"optimal-4x4", opt(core.IdealConfig(4, 4))},
		{"optimal-8x8", opt(core.IdealConfig(8, 8))},
		{"optimal-16x16", opt(core.IdealConfig(16, 16))},
		{"optimal-multicycle", opt(multi)},
		{"optimal-feasible", opt(core.FeasibleConfig())},
		{"one-per-block-8x8", oneper},
	}
}

// AllConfigs returns every selectable configuration: the DefaultConfigs
// sweep rotation plus the strategy variants.
func AllConfigs() []NamedConfig {
	return append(DefaultConfigs(), StrategyConfigs()...)
}

// ConfigByName resolves one of the AllConfigs by name.
func ConfigByName(name string) (NamedConfig, bool) {
	for _, nc := range AllConfigs() {
		if nc.Name == name {
			return nc, true
		}
	}
	return NamedConfig{}, false
}

// ConfigNames lists the selectable configuration names.
func ConfigNames() []string {
	cs := AllConfigs()
	names := make([]string, len(cs))
	for i, nc := range cs {
		names[i] = nc.Name
	}
	return names
}

// Failure is one conformance counterexample: the seed and shape that
// generated the program, the configuration it diverged under, and the
// shrunk reproducer.
type Failure struct {
	Seed       int64
	Shape      progen.Shape
	ConfigName string
	Engines    bool   // found by the lowered-vs-interpreted engines mode
	Source     string // shrunk program (re-runnable assembly)
	OrigLines  int    // lines before shrinking
	Lines      int    // lines after shrinking
	Div        *Divergence
	Err        error // non-divergence failure (generator or harness bug)
}

// Render formats the failure as a replayable report: metadata, the
// divergence, and the shrunk assembly.
func (f *Failure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "FAILURE seed=%d shape=%s config=%s (shrunk %d -> %d lines)\n",
		f.Seed, f.Shape, f.ConfigName, f.OrigLines, f.Lines)
	if f.Div != nil {
		fmt.Fprintf(&b, "%v\n", f.Div)
	}
	if f.Err != nil {
		fmt.Fprintf(&b, "error: %v\n", f.Err)
	}
	mode := ""
	if f.Engines {
		mode = " -engines"
	}
	fmt.Fprintf(&b, "replay: dtsvliw-oracle%s -replay %d -shapes %s -configs %s\n",
		mode, f.Seed, f.Shape, f.ConfigName)
	b.WriteString("---- reproducer ----\n")
	b.WriteString(strings.TrimRight(f.Source, "\n"))
	b.WriteString("\n---- end reproducer ----")
	return b.String()
}

// Report summarises a conformance sweep.
type Report struct {
	Runs     int
	Instret  uint64 // total sequential instructions checked
	Cycles   uint64 // total DTSVLIW cycles simulated
	Failures []Failure
}

// SweepOptions parameterises Sweep. Zero values select: all shapes, all
// DefaultConfigs, stop at the first failure, default shrink budget, one
// worker per CPU, pooled machine contexts.
type SweepOptions struct {
	N           int   // number of generated programs
	Seed        int64 // base seed; program i uses Seed+i
	Shapes      []progen.Shape
	Configs     []NamedConfig
	MaxFail     int // stop after this many failures
	ShrinkEvals int // differential runs each shrink may spend
	// EngineDiff switches the runner from machine-vs-sequential-reference
	// (RunDiff) to lowered-vs-interpreted engine lock-step
	// (RunDiffEngines).
	EngineDiff bool
	// VerifyBlocks additionally runs the block-legality verifier
	// (internal/blockcheck) on every block the machine saves: the run
	// fails if the scheduler ever emits a block that cannot be statically
	// proven equivalent to its sequential trace.
	VerifyBlocks bool
	// Workers fans the sweep out over this many goroutines (0 = one per
	// CPU, 1 = serial). Results are merged in case order, so the Report —
	// runs, totals, failures, shrunk reproducers — and the Progress
	// sequence are byte-identical for every worker count.
	Workers int
	// NoReuse disables machine-context pooling, rebuilding every machine
	// and reference from scratch (the pre-pooling behaviour). Used by the
	// throughput benchmark as its baseline; results are identical either
	// way.
	NoReuse bool
	// FastForward executes the first N sequential instructions of every
	// program at interpreter speed before cycle-accurate simulation
	// begins (core.Config.FastForward): the differential comparison
	// still covers the prefix via one aggregate checkpoint.
	FastForward uint64
	// Progress, when set, is called after every run in case order (f is
	// nil unless the run failed; the pointee is a private copy the
	// callback may retain).
	Progress func(done, total int, f *Failure)
	// Metrics selects the registry the sweep publishes its progress and
	// occupancy instruments to, and is threaded into every machine the
	// sweep builds (core.Config.Metrics); nil publishes to
	// metrics.Default. Ignored entirely when the process-wide switch is
	// off (metrics.SetEnabled(false)).
	Metrics *metrics.Registry
}

// caseResult is the outcome of one sweep case, self-contained so cases
// can be computed out of order and merged in order.
type caseResult struct {
	failure *Failure // nil on success
	instret uint64
	cycles  uint64
}

// sweepRunner executes sweep cases for one worker. Each worker owns its
// SweepContext, so pooled state is never shared across goroutines and a
// case's result never depends on which worker ran it: context reuse is
// observationally identical to fresh construction.
type sweepRunner struct {
	o       SweepOptions
	shapes  []progen.Shape
	configs []NamedConfig
	diffRun func(string, core.Config) (*Result, error)

	// Metrics plumbing (nil when the process-wide switch is off): reg is
	// threaded into every machine config so core-layer counters land in
	// the same registry; wp is this worker's pre-resolved attribution
	// counter; lastHits/lastMisses are the cursor for publishing pool
	// counter deltas after each case.
	sm                   *sweepMetrics
	reg                  *metrics.Registry
	sc                   *SweepContext
	wp                   *metrics.Counter
	lastHits, lastMisses uint64
}

func newSweepRunner(o SweepOptions, shapes []progen.Shape, configs []NamedConfig, sm *sweepMetrics, worker int) *sweepRunner {
	r := &sweepRunner{o: o, shapes: shapes, configs: configs, sm: sm}
	if sm != nil {
		r.reg = sm.reg
		r.wp = sm.workerPrograms.With(workerLabel(worker))
	}
	switch {
	case o.NoReuse && o.EngineDiff:
		r.diffRun = RunDiffEngines
	case o.NoReuse:
		r.diffRun = RunDiff
	default:
		r.sc = NewSweepContext()
		if o.EngineDiff {
			r.diffRun = r.sc.RunDiffEngines
		} else {
			r.diffRun = r.sc.RunDiff
		}
	}
	return r
}

// runCase generates, runs and (on divergence) shrinks case i.
func (r *sweepRunner) runCase(i int) caseResult {
	if r.sm != nil {
		r.sm.busy.Add(1)
		defer func() {
			r.wp.Inc()
			if r.sc != nil {
				p := r.sc.Pool()
				r.sm.poolHits.Add(p.Hits - r.lastHits)
				r.sm.poolMisses.Add(p.Misses - r.lastMisses)
				r.lastHits, r.lastMisses = p.Hits, p.Misses
			}
			r.sm.busy.Add(-1)
		}()
	}
	seed := r.o.Seed + int64(i)
	shape := r.shapes[i%len(r.shapes)]
	nc := r.configs[(i/len(r.shapes))%len(r.configs)]
	nc.Cfg.VerifyBlocks = r.o.VerifyBlocks
	nc.Cfg.FastForward = r.o.FastForward
	nc.Cfg.Metrics = r.reg
	src := progen.Generate(progen.ShapeParams(shape, seed))
	if err := progcheck.Certify(src); err != nil {
		// A structurally malformed generated program would make every
		// engine diverge from nothing in particular: reject it before any
		// engine runs it, and report the generator bug as its own failure.
		return caseResult{failure: &Failure{Seed: seed, Shape: shape, ConfigName: nc.Name,
			Engines: r.o.EngineDiff, Source: src, OrigLines: countLines(src),
			Lines: countLines(src), Err: err}}
	}

	res, err := r.diffRun(src, nc.Cfg)
	if err == nil {
		return caseResult{instret: res.Instret, cycles: res.Cycles}
	}
	f := &Failure{Seed: seed, Shape: shape, ConfigName: nc.Name, Engines: r.o.EngineDiff,
		Source: src, OrigLines: countLines(src), Lines: countLines(src)}
	var d *Divergence
	if errors.As(err, &d) {
		small, smallDiv := shrinkWith(src, nc.Cfg, r.o.ShrinkEvals, r.diffRun)
		f.Source, f.Lines = small, countLines(small)
		f.Div = smallDiv
		if f.Div == nil {
			f.Div = d // shrinking could not re-confirm; keep the original
		}
	} else {
		f.Err = err
	}
	return caseResult{failure: f}
}

// consume merges one case result into the report, in case order. It
// reports whether the failure budget is exhausted. Progress receives a
// private copy of the failure, never a pointer into rep.Failures (whose
// backing array relocates as it grows).
func consume(rep *Report, o SweepOptions, sm *sweepMetrics, cr caseResult, i, maxFail int) (stop bool) {
	rep.Runs++
	if sm != nil {
		sm.programs.Inc()
	}
	if cr.failure == nil {
		rep.Instret += cr.instret
		rep.Cycles += cr.cycles
		if sm != nil {
			sm.instret.Add(cr.instret)
			sm.cycles.Add(cr.cycles)
			sm.programCycles.Observe(cr.cycles)
		}
		if o.Progress != nil {
			o.Progress(i+1, o.N, nil)
		}
		return false
	}
	if sm != nil {
		sm.divergences.Inc()
	}
	rep.Failures = append(rep.Failures, *cr.failure)
	if o.Progress != nil {
		fcopy := *cr.failure
		o.Progress(i+1, o.N, &fcopy)
	}
	return len(rep.Failures) >= maxFail
}

// Sweep runs the property-based conformance harness: for i in [0, N),
// generate the program for seed Seed+i in shape i mod len(Shapes), run it
// differentially under a rotating configuration, and shrink every failing
// program to a minimal reproducer. Determinism: the same options always
// test the same (program, configuration) pairs and produce the same
// Report, regardless of Workers and NoReuse — cases are computed
// independently (per-worker pools, monotonic dispatch) and merged in
// case order.
func Sweep(o SweepOptions) *Report {
	shapes := o.Shapes
	if len(shapes) == 0 {
		shapes = progen.Shapes()
	}
	configs := o.Configs
	if len(configs) == 0 {
		configs = DefaultConfigs()
	}
	maxFail := o.MaxFail
	if maxFail <= 0 {
		maxFail = 1
	}
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > o.N {
		workers = o.N
	}

	var sm *sweepMetrics
	if metrics.Enabled() {
		reg := o.Metrics
		if reg == nil {
			reg = metrics.Default()
		}
		sm = newSweepMetrics(reg)
		sm.active.Add(1)
		defer sm.active.Add(-1)
		sm.cases.Set(int64(o.N))
		sm.workers.Set(int64(workers))
	}

	rep := &Report{}
	if workers <= 1 {
		r := newSweepRunner(o, shapes, configs, sm, 0)
		for i := 0; i < o.N; i++ {
			if consume(rep, o, sm, r.runCase(i), i, maxFail) {
				break
			}
		}
		return rep
	}

	// Parallel fan-out. Workers claim case indices monotonically under
	// the mutex and publish into results; the calling goroutine merges
	// strictly in index order, so the report is byte-identical to the
	// serial sweep. When the failure budget is exhausted the merger sets
	// stopAt to halt dispatch; in-flight cases finish and are discarded,
	// exactly like the serial loop's break.
	var (
		mu      sync.Mutex
		cond    = sync.NewCond(&mu)
		results = make([]*caseResult, o.N)
		next    int
		stopAt  = o.N
		wg      sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := newSweepRunner(o, shapes, configs, sm, w)
			for {
				mu.Lock()
				if next >= stopAt {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()
				cr := r.runCase(i)
				mu.Lock()
				results[i] = &cr
				cond.Broadcast()
				mu.Unlock()
			}
		}(w)
	}
	for i := 0; i < o.N; i++ {
		mu.Lock()
		for results[i] == nil {
			cond.Wait()
		}
		cr := *results[i]
		results[i] = nil
		mu.Unlock()
		if consume(rep, o, sm, cr, i, maxFail) {
			mu.Lock()
			stopAt = 0
			mu.Unlock()
			break
		}
	}
	wg.Wait()
	return rep
}

// ShrinkDivergence reduces a diverging program to a minimal program that
// still diverges under cfg, and returns it with its divergence. A
// candidate only counts as a reproducer if it is also a well-formed
// program — it must assemble and halt cleanly under plain sequential
// execution — so dropped lines cannot turn the failure into an ordinary
// program fault. Shrinking prefers a tight cycle budget so candidates
// that loop forever die fast, falling back to the full budget when the
// original failure needs longer to surface.
func ShrinkDivergence(src string, cfg core.Config, evals int) (string, *Divergence) {
	return shrinkWith(src, cfg, evals, RunDiff)
}

// shrinkWith is ShrinkDivergence parameterised over the differential
// runner, so the lowered-vs-interpreted engines mode shrinks with the
// same runner that found the failure.
func shrinkWith(src string, cfg core.Config, evals int, run func(string, core.Config) (*Result, error)) (string, *Divergence) {
	diverges := func(budget uint64) func(string) bool {
		c := cfg
		c.MaxCycles = budget
		return func(cand string) bool {
			if !refHalts(cand, c.NWin) {
				return false
			}
			_, err := run(cand, c)
			var d *Divergence
			return errors.As(err, &d)
		}
	}
	check := diverges(shrinkCycles)
	if !check(src) {
		check = diverges(maxDiffCycles)
		if !check(src) {
			// Not reproducible at all (should be impossible: runs are
			// deterministic). Hand back the original unshrunk.
			return src, nil
		}
	}
	small := Shrink(src, check, evals)
	_, err := run(small, cfg)
	var d *Divergence
	errors.As(err, &d)
	return small, d
}

// refHalts reports whether src assembles and halts cleanly under the
// sequential reference interpreter within the shrink budget.
func refHalts(src string, nwin int) bool {
	st, err := BuildState(src, nwin)
	if err != nil {
		return false
	}
	return st.Run(shrinkRefInstrs) == nil
}

func countLines(s string) int {
	return len(strings.Split(strings.TrimRight(s, "\n"), "\n"))
}
