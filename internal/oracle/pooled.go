package oracle

import (
	"dtsvliw/internal/arch"
	"dtsvliw/internal/asm"
	"dtsvliw/internal/core"
	"dtsvliw/internal/mem"
)

// SweepContext owns the warm simulation state one sweep worker reuses
// across differential runs: a machine pool keyed by configuration, one
// reference-interpreter state per window count, a reusable Ref wrapper
// and the engines-mode checkpoint buffer. Reusing contexts removes the
// dominant cost of short differential runs — building the VLIW Cache
// line array, scheduler tables and page maps per program — without
// changing a single observable result: every reset path restores exact
// post-construction semantics (DESIGN.md §15).
//
// A SweepContext is NOT safe for concurrent use. Parallel sweeps keep
// one per worker, which also keeps them deterministic: a context's reuse
// history never depends on sibling workers.
type SweepContext struct {
	pool  *core.MachinePool
	refs  map[int]*arch.State // reference states, keyed by window count
	ref   Ref
	ckpts []ckpt // engines-mode checkpoint trace buffer
}

// NewSweepContext builds an empty context; it warms up as it runs.
func NewSweepContext() *SweepContext {
	return &SweepContext{
		pool: core.NewMachinePool(),
		refs: make(map[int]*arch.State),
	}
}

// Pool exposes the machine pool (hit/miss counters for tests and stats).
func (sc *SweepContext) Pool() *core.MachinePool { return sc.pool }

// refState returns a power-on reference state with nwin windows, reusing
// the previous one of that geometry.
func (sc *SweepContext) refState(nwin int) *arch.State {
	st := sc.refs[nwin]
	if st == nil {
		st = arch.NewState(nwin, mem.NewMemory())
		sc.refs[nwin] = st
	} else {
		st.Reset()
		st.Mem.Recycle()
	}
	return st
}

// RunDiff is RunDiff executing on borrowed pooled state: identical
// comparison, identical results, amortised setup cost.
func (sc *SweepContext) RunDiff(source string, cfg core.Config) (*Result, error) {
	cfg = normalizeDiffConfig(cfg)
	p, err := asm.Assemble(source)
	if err != nil {
		return nil, &ProgramError{Stage: "assemble", Err: err}
	}
	refSt := sc.refState(cfg.NWin)
	loadProgram(refSt, p)
	sc.ref.Rebind(refSt)

	ctx, err := sc.pool.Get(cfg)
	if err != nil {
		return nil, &ProgramError{Stage: "machine", Err: err}
	}
	defer sc.pool.Put(ctx)
	st := ctx.State()
	loadProgram(st, p)
	st.LogStores = true
	m, err := ctx.Prepare()
	if err != nil {
		return nil, &ProgramError{Stage: "machine", Err: err}
	}
	return runDiffOn(m, &sc.ref)
}

// RunDiffEngines is RunDiffEngines on borrowed pooled state (one context
// per engine variant, since the engine selection is part of the pool key).
func (sc *SweepContext) RunDiffEngines(source string, cfg core.Config) (*Result, error) {
	return runDiffEngines(source, cfg, sc)
}
