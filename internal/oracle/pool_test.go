package oracle

import (
	"fmt"
	"strings"
	"testing"

	"dtsvliw/internal/core"
	"dtsvliw/internal/progen"
)

// renderReport flattens a sweep report to one canonical string, so
// determinism tests can demand byte identity rather than field-by-field
// equality.
func renderReport(rep *Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "runs=%d instret=%d cycles=%d failures=%d\n",
		rep.Runs, rep.Instret, rep.Cycles, len(rep.Failures))
	for i := range rep.Failures {
		b.WriteString(rep.Failures[i].Render())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestSweepParallelDeterminism: the sweep report — counters, failure
// order, shrunk reproducers, everything — is byte-identical for any
// worker count and for the pooled and rebuild-from-scratch paths, on
// both a clean sweep and one that trips the injected scheduler fault
// (which exercises shrinking inside workers).
func TestSweepParallelDeterminism(t *testing.T) {
	cases := []struct {
		name string
		opts SweepOptions
	}{
		{"clean", SweepOptions{N: 24, Seed: 7}},
		{"faulty", SweepOptions{
			N: 30, Seed: 0,
			Shapes:  []progen.Shape{progen.ShapeMixed},
			Configs: []NamedConfig{{Name: "faulty", Cfg: faultyConfig()}},
			MaxFail: 2,
			// A tight shrink budget keeps the 4-variant comparison fast;
			// determinism must hold at any budget.
			ShrinkEvals: 20,
		}},
	}
	variants := []struct {
		name string
		mod  func(*SweepOptions)
	}{
		{"serial-noreuse", func(o *SweepOptions) { o.Workers = 1; o.NoReuse = true }},
		{"serial-pooled", func(o *SweepOptions) { o.Workers = 1 }},
		{"par2", func(o *SweepOptions) { o.Workers = 2 }},
		{"par8", func(o *SweepOptions) { o.Workers = 8 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var want string
			for _, v := range variants {
				opts := c.opts
				v.mod(&opts)
				got := renderReport(Sweep(opts))
				if c.name == "faulty" && !strings.Contains(got, "failures=2") {
					t.Fatalf("%s: faulty sweep did not hit MaxFail:\n%s", v.name, got)
				}
				if want == "" {
					want = got
					continue
				}
				if got != want {
					t.Errorf("%s report differs from %s:\n--- want\n%s--- got\n%s",
						v.name, variants[0].name, want, got)
				}
			}
		})
	}
}

// TestSweepProgressCopy: the Progress callback's failure pointer must
// stay valid after the sweep appends more failures (it is a copy, not a
// pointer into the report's slice).
func TestSweepProgressCopy(t *testing.T) {
	var seen []*Failure
	rep := Sweep(SweepOptions{
		N: 30, Seed: 0,
		Shapes:  []progen.Shape{progen.ShapeMixed},
		Configs: []NamedConfig{{Name: "faulty", Cfg: faultyConfig()}},
		MaxFail: 2,
		Progress: func(done, total int, f *Failure) {
			if f != nil {
				seen = append(seen, f)
			}
		},
	})
	if len(seen) != len(rep.Failures) {
		t.Fatalf("progress saw %d failures, report has %d", len(seen), len(rep.Failures))
	}
	for i, f := range seen {
		if f == &rep.Failures[i] {
			t.Fatalf("progress failure %d aliases the report slice", i)
		}
		if f.Render() != rep.Failures[i].Render() {
			t.Fatalf("progress failure %d differs from report:\n%s\nvs\n%s",
				i, f.Render(), rep.Failures[i].Render())
		}
	}
}

func sameResult(a, b *Result) bool {
	return a.ExitCode == b.ExitCode && string(a.Output) == string(b.Output) &&
		a.Instret == b.Instret && a.Cycles == b.Cycles
}

// TestPooledRunDiffMatchesFresh: a reused context produces results
// indistinguishable from a freshly built machine, across shapes, seeds
// and both diff modes — reuse is a pure perf mechanism.
func TestPooledRunDiffMatchesFresh(t *testing.T) {
	sc := NewSweepContext()
	cfg := core.IdealConfig(8, 8)
	for seed := int64(0); seed < 6; seed++ {
		for _, shape := range []progen.Shape{progen.ShapeMixed, progen.ShapeAliasing} {
			src := progen.Generate(progen.ShapeParams(shape, seed))
			fresh, errF := RunDiff(src, cfg)
			pooled, errP := sc.RunDiff(src, cfg)
			if (errF == nil) != (errP == nil) {
				t.Fatalf("seed %d %s: fresh err %v, pooled err %v", seed, shape, errF, errP)
			}
			if errF != nil {
				continue
			}
			if !sameResult(fresh, pooled) {
				t.Fatalf("seed %d %s: fresh %+v != pooled %+v", seed, shape, fresh, pooled)
			}

			freshE, errFE := RunDiffEngines(src, cfg)
			pooledE, errPE := sc.RunDiffEngines(src, cfg)
			if (errFE == nil) != (errPE == nil) {
				t.Fatalf("seed %d %s engines: fresh err %v, pooled err %v", seed, shape, errFE, errPE)
			}
			if errFE == nil && !sameResult(freshE, pooledE) {
				t.Fatalf("seed %d %s engines: fresh %+v != pooled %+v", seed, shape, freshE, pooledE)
			}
		}
	}
	if sc.Pool().Hits == 0 {
		t.Fatal("pool recorded no hits — contexts were not actually reused")
	}
}

// TestPooledSteadyStateAllocBound: recycling a warm context must cost a
// small constant number of allocations — orders of magnitude below
// building a machine — or the pool has quietly stopped paying for
// itself. The bound covers poolKey formatting and map traffic; the
// reset paths themselves (scheduler slabs, vcache drain, page free
// list) must not allocate at all.
func TestPooledSteadyStateAllocBound(t *testing.T) {
	cfg := core.IdealConfig(8, 8)
	if !core.Poolable(cfg) {
		t.Fatal("ideal config not poolable")
	}
	pool := core.NewMachinePool()
	src := progen.Generate(progen.ShapeParams(progen.ShapeMixed, 1))
	// Warm the pool: one full differential run populates every arena.
	sc := NewSweepContext()
	if _, err := sc.RunDiff(src, cfg); err != nil {
		t.Fatal(err)
	}
	ctx, err := pool.Get(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.Prepare(); err != nil {
		t.Fatal(err)
	}
	pool.Put(ctx)

	allocs := testing.AllocsPerRun(50, func() {
		c, err := pool.Get(cfg)
		if err != nil {
			panic(err)
		}
		if _, err := c.Prepare(); err != nil {
			panic(err)
		}
		pool.Put(c)
	})
	// A fresh NewMachineContext+Prepare costs thousands of allocations
	// (line arrays, scheduler tables, page maps); the recycle cycle must
	// stay under a small fixed budget.
	if allocs > 40 {
		t.Fatalf("steady-state get/prepare/put cycle allocates %.0f objects", allocs)
	}
}

// TestFastForwardEquivalence: fast-forwarding a warmup prefix changes
// cycle accounting only — the architectural outcome, instruction count
// and reference agreement are untouched, and cycles strictly drop.
func TestFastForwardEquivalence(t *testing.T) {
	cfg := core.IdealConfig(8, 8)
	for seed := int64(0); seed < 4; seed++ {
		src := progen.Generate(progen.ShapeParams(progen.ShapeMixed, seed))
		base, err := RunDiff(src, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ffCfg := cfg
		ffCfg.FastForward = base.Instret / 2
		ff, err := RunDiff(src, ffCfg)
		if err != nil {
			t.Fatalf("seed %d fast-forward: %v", seed, err)
		}
		if ff.ExitCode != base.ExitCode || string(ff.Output) != string(base.Output) || ff.Instret != base.Instret {
			t.Fatalf("seed %d: fast-forward changed the outcome: %+v vs %+v", seed, ff, base)
		}
		if ff.Cycles >= base.Cycles {
			t.Fatalf("seed %d: fast-forward did not reduce cycles (%d >= %d)", seed, ff.Cycles, base.Cycles)
		}
	}
}

// TestSweepFastForwardStillDiffs: a fast-forwarded sweep still catches
// the injected scheduler fault when the divergence happens after the
// warmup prefix — fast-forward trades coverage of the prefix for speed,
// not correctness of what it does simulate.
func TestSweepFastForwardStillDiffs(t *testing.T) {
	rep := Sweep(SweepOptions{
		N: 40, Seed: 0,
		Shapes:      []progen.Shape{progen.ShapeMixed},
		Configs:     []NamedConfig{{Name: "faulty", Cfg: faultyConfig()}},
		MaxFail:     1,
		FastForward: 20,
	})
	if len(rep.Failures) == 0 {
		t.Fatal("fast-forwarded sweep over the faulty machine reported no failures")
	}
}

// BenchmarkOracleSweep measures co-simulation throughput (programs/sec)
// in the three modes the BENCH_SCHED sweep rows track.
func BenchmarkOracleSweep(b *testing.B) {
	for _, v := range []struct {
		name string
		opts SweepOptions
	}{
		{"serial-noreuse", SweepOptions{Workers: 1, NoReuse: true}},
		{"serial-pooled", SweepOptions{Workers: 1}},
		{"parallel", SweepOptions{Workers: 0}},
	} {
		b.Run(v.name, func(b *testing.B) {
			const perIter = 50
			opts := v.opts
			opts.N = perIter
			opts.Seed = 1
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep := Sweep(opts)
				if len(rep.Failures) > 0 {
					b.Fatalf("divergence during benchmark:\n%s", rep.Failures[0].Render())
				}
			}
			b.ReportMetric(float64(perIter*b.N)/b.Elapsed().Seconds(), "programs/sec")
		})
	}
}
