package oracle

import (
	"fmt"
	"testing"

	"dtsvliw/internal/core"
	"dtsvliw/internal/sched"
	"dtsvliw/internal/workloads"
)

// TestStrategyRegistry pins the registered strategy set: the conformance
// matrix below must cover every strategy, so a new registration without
// conformance coverage fails here first.
func TestStrategyRegistry(t *testing.T) {
	got := sched.StrategyNames()
	want := []string{"fcfs", "one-per-block", "optimal"}
	if len(got) != len(want) {
		t.Fatalf("registered strategies %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registered strategies %v, want %v", got, want)
		}
	}
	covered := map[string]bool{"fcfs": true} // DefaultConfigs all run fcfs
	for _, nc := range StrategyConfigs() {
		covered[nc.Cfg.SchedStrategy] = true
	}
	for _, name := range got {
		if !covered[name] {
			t.Errorf("strategy %q has no StrategyConfigs entry: not covered by the conformance suite", name)
		}
	}
}

// TestStrategyConformance drives every strategy configuration through the
// differential oracle with block verification: generated programs run on
// the machine in lockstep against the sequential reference, and every
// block the scheduler saves must pass the static block-legality checker.
// Zero divergences and zero verifier violations are required — for the
// optimal strategy this proves the repacked schedules are legal and
// executable end-to-end, not just internally consistent.
func TestStrategyConformance(t *testing.T) {
	n := 24
	if testing.Short() {
		n = 8
	}
	for _, nc := range StrategyConfigs() {
		nc := nc
		t.Run(nc.Name, func(t *testing.T) {
			t.Parallel()
			rep := Sweep(SweepOptions{
				N: n, Seed: 7000,
				Configs:      []NamedConfig{nc},
				MaxFail:      3,
				VerifyBlocks: true,
			})
			for i := range rep.Failures {
				t.Errorf("%s", rep.Failures[i].Render())
			}
			if rep.Instret == 0 {
				t.Errorf("conformance sweep executed no instructions")
			}
		})
	}
}

// TestStrategyWorkloadMatrix runs every registered strategy over the full
// workload suite with the lockstep test machine and block verification
// enabled. Each workload validates its own final state, so a strategy
// that corrupts execution fails three independent checks: blockcheck,
// the lockstep comparison, and the workload's Go reference model.
func TestStrategyWorkloadMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload matrix: run without -short")
	}
	for _, name := range sched.StrategyNames() {
		for _, w := range workloads.All() {
			name, w := name, w
			t.Run(fmt.Sprintf("%s/%s", name, w.Name), func(t *testing.T) {
				t.Parallel()
				cfg := core.IdealConfig(8, 8)
				cfg.SchedStrategy = name
				cfg.VerifyBlocks = true
				cfg.TestMode = true
				cfg.MaxInstrs = 150_000
				st, err := w.NewState(cfg.NWin)
				if err != nil {
					t.Fatal(err)
				}
				m, err := core.NewMachine(cfg, st)
				if err != nil {
					t.Fatal(err)
				}
				if err := m.Run(); err != nil {
					t.Fatalf("strategy %s on %s: %v", name, w.Name, err)
				}
				if st.Halted {
					if err := w.Validate(st); err != nil {
						t.Fatal(err)
					}
				}
			})
		}
	}
}

// TestUnknownStrategyFails pins the failure mode of a misspelt strategy
// name: NewMachine must reject it with the registered names in the error.
func TestUnknownStrategyFails(t *testing.T) {
	cfg := core.IdealConfig(8, 8)
	cfg.SchedStrategy = "optimist"
	st, err := workloads.All()[0].NewState(cfg.NWin)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.NewMachine(cfg, st); err == nil {
		t.Fatal("NewMachine accepted unknown strategy name")
	}
}
