package oracle

import (
	"bytes"
	"errors"
	"fmt"

	"dtsvliw/internal/arch"
	"dtsvliw/internal/asm"
	"dtsvliw/internal/core"
	"dtsvliw/internal/mem"
)

// maxDiffCycles bounds every differential run so shrunk candidates that
// loop forever cannot hang the oracle.
const maxDiffCycles = 50_000_000

// refSlack is the instruction budget granted to the reference when the
// machine faults and the oracle needs to know whether sequential
// execution would have finished cleanly.
const refSlack = 10_000_000

// Divergence reports that the DTSVLIW machine and the sequential
// reference interpreter disagreed. It is the oracle's positive finding:
// the equivalence invariant of the paper is violated.
type Divergence struct {
	Where   string // machine checkpoint at which the disagreement surfaced
	Diff    string // first architectural difference found
	Seq     uint64 // sequential instructions retired by the reference
	Context string // disassembled window of recent reference instructions
}

func (d *Divergence) Error() string {
	return fmt.Sprintf("divergence at %s (seq %d): %s\nreference context:\n%s",
		d.Where, d.Seq, d.Diff, d.Context)
}

// Result summarises one clean differential run.
type Result struct {
	ExitCode uint32
	Output   []byte
	Instret  uint64 // sequential instructions retired by the reference
	Cycles   uint64 // DTSVLIW cycles
}

// RunDiff assembles source and executes it twice — once on the full
// DTSVLIW machine under cfg, once on the sequential reference
// interpreter — locked together at every commit checkpoint of the
// machine. At each checkpoint it compares PC, every architectural
// register (integer windows, FP, icc, fcc, Y, CWP), all journaled memory
// locations and the trap output stream; at halt it additionally diffs
// the whole memory image and the exit code.
//
// The comparison is fully independent of the machine's own lockstep
// TestMode, which RunDiff forces off. A *Divergence error means the
// machine is wrong; a *ProgramError means the program itself is faulty
// (it also misbehaves sequentially), which the conformance driver treats
// as a generator bug rather than a machine bug.
func RunDiff(source string, cfg core.Config) (*Result, error) {
	cfg = normalizeDiffConfig(cfg)

	// One assembly serves both machines; the program is loaded into two
	// independent memories.
	p, err := asm.Assemble(source)
	if err != nil {
		return nil, &ProgramError{Stage: "assemble", Err: err}
	}
	refSt := arch.NewState(cfg.NWin, mem.NewMemory())
	loadProgram(refSt, p)
	ref := RefOver(refSt)

	st := arch.NewState(cfg.NWin, mem.NewMemory())
	loadProgram(st, p)
	st.LogStores = true
	m, err := core.NewMachine(cfg, st)
	if err != nil {
		return nil, &ProgramError{Stage: "machine", Err: err}
	}
	return runDiffOn(m, ref)
}

// normalizeDiffConfig applies the differential runner's config policy:
// the machine's own TestMode is forced off (the oracle's comparison is
// independent of it), runs are cycle-bounded, and the window count gets
// the standard default.
func normalizeDiffConfig(cfg core.Config) core.Config {
	cfg.TestMode = false
	if cfg.MaxCycles == 0 || cfg.MaxCycles > maxDiffCycles {
		cfg.MaxCycles = maxDiffCycles
	}
	if cfg.NWin <= 0 {
		cfg.NWin = defaultWin
	}
	return cfg
}

// runDiffOn performs the lock-step differential comparison on a prepared
// machine and reference interpreter (same program loaded into both). It
// is the shared core of RunDiff and the pooled SweepContext.RunDiff.
func runDiffOn(m *core.Machine, ref *Ref) (*Result, error) {
	m.CheckpointHook = func(advance uint64, pc uint32, where string) error {
		for i := uint64(0); i < advance; i++ {
			if err := ref.Step(); err != nil {
				return &Divergence{Where: where, Diff: err.Error(),
					Seq: ref.Retired(), Context: ref.Context()}
			}
		}
		if ref.St.PC != pc {
			return &Divergence{Where: where,
				Diff: fmt.Sprintf("PC: machine %#08x, reference %#08x", pc, ref.St.PC),
				Seq:  ref.Retired(), Context: ref.Context()}
		}
		if diff, ok := arch.CompareRegisters(m.St, ref.St); !ok {
			return &Divergence{Where: where, Diff: diff,
				Seq: ref.Retired(), Context: ref.Context()}
		}
		if d := diffJournal(m, ref); d != "" {
			return &Divergence{Where: where, Diff: d,
				Seq: ref.Retired(), Context: ref.Context()}
		}
		if !bytes.Equal(m.St.Output, ref.St.Output) {
			return &Divergence{Where: where,
				Diff: fmt.Sprintf("output: machine %q, reference %q", m.St.Output, ref.St.Output),
				Seq:  ref.Retired(), Context: ref.Context()}
		}
		return nil
	}

	if err := m.Run(); err != nil {
		var d *Divergence
		if errors.As(err, &d) {
			return nil, d
		}
		// The machine faulted outside the comparison. If sequential
		// execution finishes cleanly the fault is the machine's own —
		// that is a divergence with teeth, not a broken program.
		if refErr := finishRef(ref); refErr != nil {
			return nil, &ProgramError{Stage: "reference", Err: refErr}
		}
		return nil, &Divergence{Where: "machine fault",
			Diff: fmt.Sprintf("machine error %q but the reference halted cleanly (exit %d)", err, ref.St.ExitCode),
			Seq:  ref.Retired(), Context: ref.Context()}
	}

	if d := finalDiff(m, ref); d != nil {
		return nil, d
	}
	return &Result{
		ExitCode: m.St.ExitCode,
		Output:   append([]byte(nil), m.St.Output...),
		Instret:  ref.Retired(),
		Cycles:   m.Stats.Cycles,
	}, nil
}

// diffJournal drains both machines' store journals and compares the
// current memory contents at every journaled location.
func diffJournal(m *core.Machine, ref *Ref) string {
	recs := append(m.DrainJournal(), ref.St.StoreLog...)
	ref.St.StoreLog = ref.St.StoreLog[:0]
	for _, rec := range recs {
		a, errA := m.St.Mem.Read(rec.Addr, rec.Size)
		b, errB := ref.St.Mem.Read(rec.Addr, rec.Size)
		if errA != nil || errB != nil {
			return fmt.Sprintf("mem[%#08x/%d]: machine read %v, reference read %v",
				rec.Addr, rec.Size, errA, errB)
		}
		if a != b {
			return fmt.Sprintf("mem[%#08x/%d]: machine %#x, reference %#x",
				rec.Addr, rec.Size, a, b)
		}
	}
	return ""
}

// finalDiff performs the full end-of-run comparison after a clean halt.
func finalDiff(m *core.Machine, ref *Ref) *Divergence {
	mk := func(diff string) *Divergence {
		return &Divergence{Where: "final state", Diff: diff,
			Seq: ref.Retired(), Context: ref.Context()}
	}
	if !ref.St.Halted {
		return mk(fmt.Sprintf("machine halted but reference is still at PC %#08x after %d instructions",
			ref.St.PC, ref.Retired()))
	}
	if m.St.ExitCode != ref.St.ExitCode {
		return mk(fmt.Sprintf("exit code: machine %d, reference %d", m.St.ExitCode, ref.St.ExitCode))
	}
	if diff, ok := arch.CompareRegisters(m.St, ref.St); !ok {
		return mk(diff)
	}
	if !bytes.Equal(m.St.Output, ref.St.Output) {
		return mk(fmt.Sprintf("output: machine %q, reference %q", m.St.Output, ref.St.Output))
	}
	if addr, differs := m.St.Mem.FirstDiff(ref.St.Mem); differs {
		a, _ := m.St.Mem.Read(addr, 1)
		b, _ := ref.St.Mem.Read(addr, 1)
		return mk(fmt.Sprintf("mem[%#08x]: machine %#02x, reference %#02x", addr, a, b))
	}
	return nil
}

// finishRef runs the reference to halt after a machine fault so the
// oracle can tell a machine bug from a broken program.
func finishRef(ref *Ref) error {
	for !ref.St.Halted {
		if ref.Retired() >= refSlack {
			return fmt.Errorf("reference exceeded %d instructions without halting", uint64(refSlack))
		}
		if err := ref.Step(); err != nil {
			return err
		}
	}
	return nil
}
