package oracle

import (
	"bytes"
	"errors"
	"fmt"
	"hash/fnv"

	"dtsvliw/internal/arch"
	"dtsvliw/internal/asm"
	"dtsvliw/internal/core"
)

// ckpt is one commit-checkpoint observation of a machine run: the hook's
// identification of the synchronisation point plus a fingerprint of the
// architectural state and journaled memory at that point.
type ckpt struct {
	where   string
	advance uint64
	pc      uint32
	fp      uint64
}

// RunDiffEngines assembles source and executes it twice on the full
// DTSVLIW machine under cfg — once with the interpreted VLIW Engine
// (re-executing sched.Slot structures) and once with the decode-once
// lowered block form (DESIGN.md §11) — locked together at every commit
// checkpoint. The interpreted run goes first and records, per
// checkpoint, the sequential advance, the PC and a fingerprint of all
// architectural registers, condition codes and journaled memory; the
// lowered run then replays the same program and must produce the
// identical checkpoint sequence. After both halt, exit code, output,
// registers, the whole memory image and the cycle count are compared:
// lowering must be timing-identical, not merely architecturally
// identical.
//
// A *Divergence means the lowered engine disagrees with the interpreted
// one; a *ProgramError means the program itself is faulty (both engines
// reject it identically).
func RunDiffEngines(source string, cfg core.Config) (*Result, error) {
	return runDiffEngines(source, cfg, nil)
}

// runDiffEngines is the shared core of RunDiffEngines and the pooled
// SweepContext.RunDiffEngines: with a non-nil SweepContext the two
// machines execute on borrowed pooled contexts and the checkpoint trace
// reuses the context's buffer.
func runDiffEngines(source string, cfg core.Config, sc *SweepContext) (*Result, error) {
	cfg = normalizeDiffConfig(cfg)
	p, err := asm.Assemble(source)
	if err != nil {
		return nil, &ProgramError{Stage: "assemble", Err: err}
	}

	// Both contexts stay borrowed until every comparison below is done:
	// the final check reads both machines' full states side by side.
	var ctxI, ctxL *core.MachineContext
	if sc != nil {
		defer func() {
			sc.pool.Put(ctxI)
			sc.pool.Put(ctxL)
		}()
	}

	var trace []ckpt
	if sc != nil {
		trace = sc.ckpts[:0]
	}
	var mi, ml *core.Machine
	var errI, errL error
	var consumed int
	ctxI, mi, trace, _, errI = engineRun(p, cfg, true, nil, trace, sc)
	if sc != nil {
		sc.ckpts = trace // keep the (possibly grown) buffer for reuse
	}
	if errI != nil {
		var pe *ProgramError
		if errors.As(errI, &pe) {
			return nil, pe
		}
	}
	ctxL, ml, _, consumed, errL = engineRun(p, cfg, false, trace, nil, sc)
	if errL != nil {
		var d *Divergence
		if errors.As(errL, &d) {
			return nil, d
		}
		var pe *ProgramError
		if errors.As(errL, &pe) {
			return nil, pe
		}
	}

	// Both runs must fail identically or both succeed.
	if (errI == nil) != (errL == nil) ||
		(errI != nil && errL != nil && errI.Error() != errL.Error()) {
		return nil, &Divergence{Where: "machine fault",
			Diff: fmt.Sprintf("interpreted engine: %v; lowered engine: %v", errI, errL),
			Seq:  ml.RefInstret()}
	}
	if errI != nil {
		// The program faults the same way on both engines: its own bug.
		return nil, &ProgramError{Stage: "machine", Err: errI}
	}

	if consumed != len(trace) {
		return nil, &Divergence{Where: "final state",
			Diff: fmt.Sprintf("checkpoint count: interpreted %d, lowered %d", len(trace), consumed),
			Seq:  ml.RefInstret()}
	}
	mk := func(diff string) *Divergence {
		return &Divergence{Where: "final state", Diff: diff, Seq: ml.RefInstret()}
	}
	if ml.St.ExitCode != mi.St.ExitCode {
		return nil, mk(fmt.Sprintf("exit code: lowered %d, interpreted %d", ml.St.ExitCode, mi.St.ExitCode))
	}
	if diff, ok := arch.CompareRegisters(ml.St, mi.St); !ok {
		return nil, mk(diff)
	}
	if !bytes.Equal(ml.St.Output, mi.St.Output) {
		return nil, mk(fmt.Sprintf("output: lowered %q, interpreted %q", ml.St.Output, mi.St.Output))
	}
	if addr, differs := ml.St.Mem.FirstDiff(mi.St.Mem); differs {
		a, _ := ml.St.Mem.Read(addr, 1)
		b, _ := mi.St.Mem.Read(addr, 1)
		return nil, mk(fmt.Sprintf("mem[%#08x]: lowered %#02x, interpreted %#02x", addr, a, b))
	}
	if ml.Stats.Cycles != mi.Stats.Cycles {
		return nil, mk(fmt.Sprintf("cycles: lowered %d, interpreted %d", ml.Stats.Cycles, mi.Stats.Cycles))
	}
	return &Result{
		ExitCode: ml.St.ExitCode,
		Output:   append([]byte(nil), ml.St.Output...),
		Instret:  ml.RefInstret(),
		Cycles:   ml.Stats.Cycles,
	}, nil
}

// engineRun executes the assembled program on one machine. With follow ==
// nil it records the checkpoint trace (into traceBuf's storage when
// provided); otherwise it verifies each checkpoint against the recorded
// trace and fails with a *Divergence on the first mismatch. consumed
// reports how many recorded checkpoints the run replayed. With a non-nil
// SweepContext the machine comes from its pool; the returned context is
// the caller's to Put once it is done with the machine's state.
func engineRun(p *asm.Program, cfg core.Config, interpreted bool, follow, traceBuf []ckpt, sc *SweepContext) (ctx *core.MachineContext, m *core.Machine, trace []ckpt, consumed int, err error) {
	cfg.InterpretedEngine = interpreted
	if sc != nil {
		ctx, err = sc.pool.Get(cfg)
	} else {
		ctx, err = core.NewMachineContext(cfg)
	}
	if err != nil {
		return nil, nil, nil, 0, &ProgramError{Stage: "machine", Err: err}
	}
	st := ctx.State()
	loadProgram(st, p)
	st.LogStores = true
	m, err = ctx.Prepare()
	if err != nil {
		return ctx, nil, nil, 0, &ProgramError{Stage: "machine", Err: err}
	}
	trace = traceBuf
	m.CheckpointHook = func(advance uint64, pc uint32, where string) error {
		fp := engineFingerprint(m)
		if follow == nil {
			trace = append(trace, ckpt{where: where, advance: advance, pc: pc, fp: fp})
			return nil
		}
		if consumed >= len(follow) {
			return &Divergence{Where: where,
				Diff: fmt.Sprintf("lowered engine reached checkpoint %d but the interpreted run had only %d", consumed+1, len(follow)),
				Seq:  m.RefInstret()}
		}
		exp := follow[consumed]
		consumed++
		if exp.where != where || exp.advance != advance || exp.pc != pc || exp.fp != fp {
			return &Divergence{Where: where,
				Diff: fmt.Sprintf("checkpoint %d: lowered (%s, advance %d, pc %#08x, state %#016x) != interpreted (%s, advance %d, pc %#08x, state %#016x)",
					consumed, where, advance, pc, fp, exp.where, exp.advance, exp.pc, exp.fp),
				Seq: m.RefInstret()}
		}
		return nil
	}
	err = m.Run()
	return ctx, m, trace, consumed, err
}

// engineFingerprint hashes the architectural registers, condition codes
// and the current values of every journaled memory location (draining the
// journal), so two runs agree at a checkpoint iff the fingerprints match.
func engineFingerprint(m *core.Machine) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	w32 := func(v uint32) {
		buf[0], buf[1], buf[2], buf[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
		h.Write(buf[:4])
	}
	for _, r := range m.St.Regs {
		w32(r)
	}
	for _, f := range m.St.F {
		w32(f)
	}
	h.Write([]byte{m.St.ICC(), m.St.FCC(), m.St.CWP()})
	w32(m.St.Y())
	for _, rec := range m.DrainJournal() {
		w32(rec.Addr)
		h.Write([]byte{rec.Size})
		v, err := m.St.Mem.Read(rec.Addr, rec.Size)
		if err != nil {
			v = 0xdead
		}
		w32(v)
	}
	w32(uint32(len(m.St.Output)))
	return h.Sum64()
}
