package oracle

import "strings"

// defaultShrinkEvals bounds the number of candidate runs one shrink may
// spend; each candidate is a full differential run, so the budget keeps
// shrinking cheap relative to the sweep itself.
const defaultShrinkEvals = 400

// Shrink reduces source to a smaller assembly program for which check
// still returns true, using delta debugging (ddmin) at line granularity.
// check must treat a program that fails to assemble as uninteresting
// (return false); dropping a label or directive simply makes that
// candidate a dead end. maxEvals bounds the number of check calls
// (<= 0 selects the default budget). The result always satisfies check —
// in the worst case it is source itself, which callers must ensure is
// interesting before shrinking.
func Shrink(source string, check func(string) bool, maxEvals int) string {
	if maxEvals <= 0 {
		maxEvals = defaultShrinkEvals
	}
	lines := strings.Split(source, "\n")
	evals := 0
	ok := func(cand []string) bool {
		if evals >= maxEvals {
			return false
		}
		evals++
		return check(strings.Join(cand, "\n"))
	}

	n := 2 // granularity: number of chunks the program is cut into
	for len(lines) >= 2 && evals < maxEvals {
		chunk := (len(lines) + n - 1) / n
		reduced := false
		for start := 0; start < len(lines); start += chunk {
			end := start + chunk
			if end > len(lines) {
				end = len(lines)
			}
			cand := make([]string, 0, len(lines)-(end-start))
			cand = append(cand, lines[:start]...)
			cand = append(cand, lines[end:]...)
			if len(cand) == 0 {
				continue
			}
			if ok(cand) {
				// The complement still fails: keep it and re-cut at a
				// coarser granularity relative to the smaller program.
				lines = cand
				if n > 2 {
					n--
				}
				reduced = true
				break
			}
		}
		if !reduced {
			if n >= len(lines) {
				break // already at single-line granularity; minimal
			}
			n *= 2
			if n > len(lines) {
				n = len(lines)
			}
		}
	}
	return strings.Join(lines, "\n")
}
