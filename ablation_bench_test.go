// Ablation benchmarks for the design choices documented in DESIGN.md §5a
// and the paper-§5 extensions:
//
//	go test -bench Ablation -benchtime 1x
//
// Each pair reports IPC with a mechanism enabled and disabled, isolating
// its contribution:
//
//   - source forwarding (paper Figure 2's consumer rewrite to renaming
//     registers) versus waiting for copy instructions;
//   - the checkpoint store scheme versus the §3.11 data-store-list
//     alternative (recovery cost shows up under aliasing pressure);
//   - next-long-instruction prediction (paper §5) versus the baseline
//     one-cycle trace-exit bubble.
package dtsvliw

import (
	"testing"

	"dtsvliw/internal/core"
	"dtsvliw/internal/oracle"
	"dtsvliw/internal/progen"
	"dtsvliw/internal/vliw"
	"dtsvliw/internal/workloads"
)

// ablationSeed anchors the deterministic seed range of the generated-
// program ablation benchmarks; every run measures the same programs.
const ablationSeed int64 = 100

// skipIfShort keeps `go test -short -bench` fast: ablations sweep whole
// workloads and are meaningful only at full length.
func skipIfShort(b *testing.B) {
	b.Helper()
	if testing.Short() {
		b.Skip("ablation benchmarks skipped in -short mode")
	}
}

// BenchmarkAblationForwarding isolates source forwarding: without it,
// consumers of split values wait for the copy and dependence chains
// re-serialise at every split point.
func BenchmarkAblationForwarding(b *testing.B) {
	skipIfShort(b)
	for _, w := range workloads.All() {
		b.Run("on/"+w.Name, func(b *testing.B) {
			benchRun(b, w, core.IdealConfig(8, 8))
		})
		b.Run("off/"+w.Name, func(b *testing.B) {
			cfg := core.IdealConfig(8, 8)
			cfg.NoSourceForwarding = true
			benchRun(b, w, cfg)
		})
	}
}

// BenchmarkAblationStoreScheme compares the evaluated checkpoint scheme
// against the paper's data-store-list alternative.
func BenchmarkAblationStoreScheme(b *testing.B) {
	skipIfShort(b)
	for _, w := range workloads.All() {
		b.Run("checkpoint/"+w.Name, func(b *testing.B) {
			benchRun(b, w, core.FeasibleConfig())
		})
		b.Run("storelist/"+w.Name, func(b *testing.B) {
			cfg := core.FeasibleConfig()
			cfg.StoreScheme = vliw.SchemeStoreList
			benchRun(b, w, cfg)
		})
	}
}

// BenchmarkAblationExitPrediction isolates next-long-instruction
// prediction on the branchiest workloads, where trace exits dominate.
func BenchmarkAblationExitPrediction(b *testing.B) {
	skipIfShort(b)
	for _, name := range []string{"gcc", "go", "xlisp", "compress"} {
		w, _ := workloads.ByName(name)
		b.Run("off/"+name, func(b *testing.B) {
			benchRun(b, w, core.IdealConfig(8, 8))
		})
		b.Run("on/"+name, func(b *testing.B) {
			cfg := core.IdealConfig(8, 8)
			cfg.ExitPrediction = true
			benchRun(b, w, cfg)
		})
	}
}

// BenchmarkAblationGeometryExtremes contrasts degenerate geometries
// against the balanced 8x8 block the paper recommends.
func BenchmarkAblationGeometryExtremes(b *testing.B) {
	skipIfShort(b)
	for _, g := range [][2]int{{64, 1}, {1, 64}, {8, 8}} {
		for _, name := range []string{"ijpeg", "gcc"} {
			w, _ := workloads.ByName(name)
			b.Run(geoName(g)+"/"+name, func(b *testing.B) {
				benchRun(b, w, core.IdealConfig(g[0], g[1]))
			})
		}
	}
}

// BenchmarkAblationLoadLatency sweeps load latency 1..4 (the design
// space of the paper's companion multicycle study) on the two most
// load-bound workloads.
func BenchmarkAblationLoadLatency(b *testing.B) {
	skipIfShort(b)
	for lat := 1; lat <= 4; lat++ {
		for _, name := range []string{"vortex", "compress"} {
			w, _ := workloads.ByName(name)
			b.Run(geoName([2]int{lat, 0})[:2]+"cy/"+name, func(b *testing.B) {
				cfg := core.IdealConfig(8, 8)
				cfg.LoadLatency = lat
				benchRun(b, w, cfg)
			})
		}
	}
}

// BenchmarkAblationAliasingPressure measures both store-recoverability
// schemes on progen's load/store-aliasing shape — generated programs
// dense in same-address byte/halfword/word overlap, where recovery and
// conservative rescheduling costs dominate. Programs come from the
// explicit seed range [ablationSeed, ablationSeed+aliasProgs), so the
// benchmark is bit-for-bit reproducible.
func BenchmarkAblationAliasingPressure(b *testing.B) {
	skipIfShort(b)
	const aliasProgs = 24
	for _, scheme := range []struct {
		name string
		s    vliw.StoreScheme
	}{{"checkpoint", vliw.SchemeCheckpoint}, {"storelist", vliw.SchemeStoreList}} {
		b.Run(scheme.name, func(b *testing.B) {
			cfg := core.IdealConfig(8, 8)
			cfg.StoreScheme = scheme.s
			cfg.MaxCycles = 1 << 60
			var cycles, retired uint64
			for i := 0; i < b.N; i++ {
				cycles, retired = 0, 0
				for p := 0; p < aliasProgs; p++ {
					src := progen.Generate(progen.ShapeParams(progen.ShapeAliasing, ablationSeed+int64(p)))
					m := benchRunSource(b, src, cfg)
					cycles += m.Stats.Cycles
					retired += m.Stats.Retired
				}
				b.SetBytes(int64(retired))
			}
			if cycles > 0 {
				b.ReportMetric(float64(retired)/float64(cycles), "IPC")
			}
		})
	}
}

// benchRunSource assembles and runs one source program on a DTSVLIW
// machine, returning it for stats harvesting.
func benchRunSource(b *testing.B, src string, cfg core.Config) *core.Machine {
	b.Helper()
	st, err := oracle.BuildState(src, cfg.NWin)
	if err != nil {
		b.Fatal(err)
	}
	m, err := core.NewMachine(cfg, st)
	if err != nil {
		b.Fatal(err)
	}
	if err := m.Run(); err != nil {
		b.Fatal(err)
	}
	return m
}

func geoName(g [2]int) string {
	return string(rune('0'+g[0]/10)) + string(rune('0'+g[0]%10)) + "x" +
		string(rune('0'+g[1]/10)) + string(rune('0'+g[1]%10))
}
