// Ablation benchmarks for the design choices documented in DESIGN.md §5a
// and the paper-§5 extensions:
//
//	go test -bench Ablation -benchtime 1x
//
// Each pair reports IPC with a mechanism enabled and disabled, isolating
// its contribution:
//
//   - source forwarding (paper Figure 2's consumer rewrite to renaming
//     registers) versus waiting for copy instructions;
//   - the checkpoint store scheme versus the §3.11 data-store-list
//     alternative (recovery cost shows up under aliasing pressure);
//   - next-long-instruction prediction (paper §5) versus the baseline
//     one-cycle trace-exit bubble.
package dtsvliw

import (
	"testing"

	"dtsvliw/internal/core"
	"dtsvliw/internal/vliw"
	"dtsvliw/internal/workloads"
)

// BenchmarkAblationForwarding isolates source forwarding: without it,
// consumers of split values wait for the copy and dependence chains
// re-serialise at every split point.
func BenchmarkAblationForwarding(b *testing.B) {
	for _, w := range workloads.All() {
		b.Run("on/"+w.Name, func(b *testing.B) {
			benchRun(b, w, core.IdealConfig(8, 8))
		})
		b.Run("off/"+w.Name, func(b *testing.B) {
			cfg := core.IdealConfig(8, 8)
			cfg.NoSourceForwarding = true
			benchRun(b, w, cfg)
		})
	}
}

// BenchmarkAblationStoreScheme compares the evaluated checkpoint scheme
// against the paper's data-store-list alternative.
func BenchmarkAblationStoreScheme(b *testing.B) {
	for _, w := range workloads.All() {
		b.Run("checkpoint/"+w.Name, func(b *testing.B) {
			benchRun(b, w, core.FeasibleConfig())
		})
		b.Run("storelist/"+w.Name, func(b *testing.B) {
			cfg := core.FeasibleConfig()
			cfg.StoreScheme = vliw.SchemeStoreList
			benchRun(b, w, cfg)
		})
	}
}

// BenchmarkAblationExitPrediction isolates next-long-instruction
// prediction on the branchiest workloads, where trace exits dominate.
func BenchmarkAblationExitPrediction(b *testing.B) {
	for _, name := range []string{"gcc", "go", "xlisp", "compress"} {
		w, _ := workloads.ByName(name)
		b.Run("off/"+name, func(b *testing.B) {
			benchRun(b, w, core.IdealConfig(8, 8))
		})
		b.Run("on/"+name, func(b *testing.B) {
			cfg := core.IdealConfig(8, 8)
			cfg.ExitPrediction = true
			benchRun(b, w, cfg)
		})
	}
}

// BenchmarkAblationGeometryExtremes contrasts degenerate geometries
// against the balanced 8x8 block the paper recommends.
func BenchmarkAblationGeometryExtremes(b *testing.B) {
	for _, g := range [][2]int{{64, 1}, {1, 64}, {8, 8}} {
		for _, name := range []string{"ijpeg", "gcc"} {
			w, _ := workloads.ByName(name)
			b.Run(geoName(g)+"/"+name, func(b *testing.B) {
				benchRun(b, w, core.IdealConfig(g[0], g[1]))
			})
		}
	}
}

// BenchmarkAblationLoadLatency sweeps load latency 1..4 (the design
// space of the paper's companion multicycle study) on the two most
// load-bound workloads.
func BenchmarkAblationLoadLatency(b *testing.B) {
	for lat := 1; lat <= 4; lat++ {
		for _, name := range []string{"vortex", "compress"} {
			w, _ := workloads.ByName(name)
			b.Run(geoName([2]int{lat, 0})[:2]+"cy/"+name, func(b *testing.B) {
				cfg := core.IdealConfig(8, 8)
				cfg.LoadLatency = lat
				benchRun(b, w, cfg)
			})
		}
	}
}

func geoName(g [2]int) string {
	return string(rune('0'+g[0]/10)) + string(rune('0'+g[0]%10)) + "x" +
		string(rune('0'+g[1]/10)) + string(rune('0'+g[1]%10))
}
